//===- TapeCompiler.cpp - AST -> tape lowering ------------------*- C++ -*-===//
//
// Part of the SafeGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
//
// Lowers a frontend::FunctionDecl into a core::Tape. Three stages:
//
//  1. Emission: a recursive walk that produces one op per evaluation
//     step, in exactly the tree-walk interpreter's evaluation order
//     (lhs before rhs, lvalue/bounds before rhs in assignments, only the
//     taken branch of ?:). Every symbol-drawing op (constants, inputs,
//     nonlinear kernels) therefore executes at the same position in the
//     op stream as under the tree walker, which is what makes the tape
//     bit-identical.
//
//  2. Peephole fusion: adjacent (producer, single-use consumer) pairs in
//     straight-line code collapse into superinstructions. Fusion removes
//     dispatch only — the fused op performs the identical kernel calls
//     in the identical order, so it is exact even for symbol-drawing
//     constants.
//
//  3. Liveness + linear scan: backward dataflow over the flat code
//     computes live intervals for the virtual FP registers; a linear
//     scan maps them onto reusable slots so the executor's register file
//     (aa::Batch columns in batch mode) stays at max-live size instead
//     of growing with every temporary.
//
// Anything outside the supported subset throws and the caller falls back
// to the tree engine, which defines the semantics (including the error
// semantics of constructs like float->int casts).
//
//===----------------------------------------------------------------------===//

#include "core/Tape.h"
#include "frontend/Type.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace safegen {
namespace core {

using namespace frontend;

namespace {

struct CompileError {
  std::string Why;
};

[[noreturn]] static void bail(const std::string &Why) {
  throw CompileError{Why};
}

struct Binding {
  enum class K : uint8_t { Fp, Int, Array } Kind = K::Fp;
  int32_t Idx = -1;
};

/// Rejects expressions that mutate variables: embedded side effects
/// would let a later operand change a register an earlier operand read,
/// which the flat register file cannot model (the tree walker copies
/// values eagerly). Statement-level assignments are handled separately.
static void checkNoSideEffects(const Expr *E) {
  if (!E)
    return;
  switch (E->getKind()) {
  case Expr::Kind::Assign:
    bail("assignment inside an expression");
  case Expr::Kind::Unary: {
    const auto *U = static_cast<const UnaryExpr *>(E);
    switch (U->getOp()) {
    case UnaryOpKind::PreInc:
    case UnaryOpKind::PreDec:
    case UnaryOpKind::PostInc:
    case UnaryOpKind::PostDec:
      bail("increment/decrement inside an expression");
    default:
      checkNoSideEffects(U->getOperand());
    }
    return;
  }
  case Expr::Kind::Paren:
    return checkNoSideEffects(static_cast<const ParenExpr *>(E)->getInner());
  case Expr::Kind::Binary: {
    const auto *B = static_cast<const BinaryExpr *>(E);
    checkNoSideEffects(B->getLhs());
    checkNoSideEffects(B->getRhs());
    return;
  }
  case Expr::Kind::Conditional: {
    const auto *C = static_cast<const ConditionalExpr *>(E);
    checkNoSideEffects(C->getCond());
    checkNoSideEffects(C->getTrueExpr());
    checkNoSideEffects(C->getFalseExpr());
    return;
  }
  case Expr::Kind::Subscript: {
    const auto *S = static_cast<const SubscriptExpr *>(E);
    checkNoSideEffects(S->getBase());
    checkNoSideEffects(S->getIndex());
    return;
  }
  case Expr::Kind::Call:
    for (const Expr *A : static_cast<const CallExpr *>(E)->getArgs())
      checkNoSideEffects(A);
    return;
  case Expr::Kind::Cast:
    return checkNoSideEffects(static_cast<const CastExpr *>(E)->getOperand());
  default:
    return;
  }
}

static const Expr *stripParens(const Expr *E) {
  while (E && E->getKind() == Expr::Kind::Paren)
    E = static_cast<const ParenExpr *>(E)->getInner();
  return E;
}

class TapeBuilder {
public:
  TapeBuilder(const FunctionDecl *F, const TapeCompileOptions &O)
      : Fn(F), Opts(O) {}

  Tape compile();

private:
  const FunctionDecl *Fn;
  const TapeCompileOptions &Opts;
  Tape T;

  int32_t NumFpV = 0;
  std::vector<char> IsTempV; // per FP vreg: expression temporary?
  std::vector<std::map<std::string, Binding>> Scopes;
  std::map<uint64_t, int32_t> ConstPool;
  std::map<long long, int32_t> IntConstPool;
  std::vector<int32_t> Labels; // label id -> instruction index
  struct LoopCtx {
    int32_t BreakLbl, ContinueLbl;
  };
  std::vector<LoopCtx> Loops;

  //===-- small helpers ---------------------------------------------------===//

  int32_t newFpV(bool Temp) {
    IsTempV.push_back(Temp ? 1 : 0);
    return NumFpV++;
  }
  int32_t newIntReg() { return T.NumIntRegs++; }

  int32_t addConst(double V) {
    uint64_t Bits;
    std::memcpy(&Bits, &V, sizeof(Bits));
    auto It = ConstPool.find(Bits);
    if (It != ConstPool.end())
      return It->second;
    // Mirrors the aa::Affine(double) exactness test: integral values up
    // to 2^53 need no deviation symbol.
    bool Exact = std::trunc(V) == V && std::fabs(V) <= 0x1p53;
    int32_t Id = static_cast<int32_t>(T.Consts.size());
    T.Consts.push_back({V, Exact});
    ConstPool[Bits] = Id;
    return Id;
  }
  int32_t addIntConst(long long V) {
    auto It = IntConstPool.find(V);
    if (It != IntConstPool.end())
      return It->second;
    int32_t Id = static_cast<int32_t>(T.IntConsts.size());
    T.IntConsts.push_back(V);
    IntConstPool[V] = Id;
    return Id;
  }

  void emit(TapeOpcode Op, uint8_t Sub, int32_t Dst, int32_t A, int32_t B,
            int32_t C) {
    T.Code.push_back({Op, Sub, Dst, A, B, C});
  }

  int32_t newLabel() {
    Labels.push_back(-1);
    return static_cast<int32_t>(Labels.size()) - 1;
  }
  void bindLabel(int32_t L) {
    assert(Labels[L] == -1 && "label bound twice");
    Labels[L] = static_cast<int32_t>(T.Code.size());
  }

  Binding *lookup(const std::string &Name) {
    for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
      auto F = It->find(Name);
      if (F != It->end())
        return &F->second;
    }
    return nullptr;
  }

  void bind(const std::string &Name, Binding B) {
    // The tree walker keeps one flat frame per function, so a nested
    // declaration shadowing an enclosing name would behave differently
    // under lexical scoping: reject it and let the tree define it.
    for (size_t I = 0; I + 1 < Scopes.size(); ++I)
      if (Scopes[I].count(Name))
        bail("declaration shadows enclosing '" + Name + "'");
    Scopes.back()[Name] = B;
  }

  const Binding &bindingOf(const DeclRefExpr *D) {
    Binding *B = lookup(D->getName());
    if (!B)
      bail("reference to unbound name '" + D->getName() + "'");
    return *B;
  }

  //===-- array element resolution ----------------------------------------===//

  struct ArrayRef {
    int32_t ArrayId = -1;
    size_t Level = 0;    // subscripts applied so far
    int32_t FlatReg = -1; // int register holding the partial flat index
  };

  /// Resolves a (possibly partially subscripted) array reference,
  /// emitting index expressions and per-dimension bounds checks in the
  /// tree walker's order: outer indices are evaluated and checked before
  /// inner ones (evalLvalue recurses into the base first).
  ArrayRef resolveArrayRef(const Expr *E) {
    E = stripParens(E);
    switch (E->getKind()) {
    case Expr::Kind::DeclRef: {
      const Binding &B = bindingOf(static_cast<const DeclRefExpr *>(E));
      if (B.Kind != Binding::K::Array)
        bail("subscript of a non-array");
      return {B.Idx, 0, -1};
    }
    case Expr::Kind::Subscript: {
      const auto *S = static_cast<const SubscriptExpr *>(E);
      ArrayRef P = resolveArrayRef(S->getBase());
      const TapeArray &Arr = T.Arrays[P.ArrayId];
      if (P.Level >= Arr.Dims.size())
        bail("too many subscripts");
      int64_t Dim = Arr.Dims[P.Level];
      int32_t Idx = emitInt(S->getIndex());
      emit(TapeOpcode::IBound, 0, -1, Idx, static_cast<int32_t>(Dim), -1);
      int32_t Flat;
      if (P.FlatReg < 0) {
        Flat = Idx;
      } else {
        int32_t DimReg = newIntReg();
        emit(TapeOpcode::IConst, 0, DimReg, addIntConst(Dim), -1, -1);
        int32_t Mul = newIntReg();
        emit(TapeOpcode::IMul, 0, Mul, P.FlatReg, DimReg, -1);
        Flat = newIntReg();
        emit(TapeOpcode::IAdd, 0, Flat, Mul, Idx, -1);
      }
      return {P.ArrayId, P.Level + 1, Flat};
    }
    case Expr::Kind::Unary: {
      const auto *U = static_cast<const UnaryExpr *>(E);
      if (U->getOp() != UnaryOpKind::Deref)
        bail("unsupported array reference");
      ArrayRef P = resolveArrayRef(U->getOperand());
      if (P.Level != 0 || T.Arrays[P.ArrayId].Dims.size() != 1)
        bail("unsupported dereference");
      int32_t Zero = newIntReg();
      emit(TapeOpcode::IConst, 0, Zero, addIntConst(0), -1, -1);
      return {P.ArrayId, 1, Zero};
    }
    default:
      bail("unsupported array reference expression");
    }
  }

  /// Full element access: every dimension subscripted.
  ArrayRef resolveElement(const Expr *E) {
    ArrayRef R = resolveArrayRef(E);
    if (R.Level != T.Arrays[R.ArrayId].Dims.size())
      bail("array value used where an element is required");
    if (R.FlatReg < 0) { // zero-dimensional cannot happen, but be safe
      R.FlatReg = newIntReg();
      emit(TapeOpcode::IConst, 0, R.FlatReg, addIntConst(0), -1, -1);
    }
    return R;
  }

  //===-- integer expressions ---------------------------------------------===//

  static bool isIntTy(const Type *Ty) { return Ty && Ty->isInteger(); }
  static bool isFpTy(const Type *Ty) { return Ty && Ty->isFloating(); }

  int32_t emitInt(const Expr *E) {
    E = stripParens(E);
    switch (E->getKind()) {
    case Expr::Kind::IntLiteral: {
      int32_t R = newIntReg();
      emit(TapeOpcode::IConst, 0, R,
           addIntConst(static_cast<const IntLiteralExpr *>(E)->getValue()), -1,
           -1);
      return R;
    }
    case Expr::Kind::DeclRef: {
      const Binding &B = bindingOf(static_cast<const DeclRefExpr *>(E));
      if (B.Kind != Binding::K::Int)
        bail("expected an integer variable");
      return B.Idx;
    }
    case Expr::Kind::Unary: {
      const auto *U = static_cast<const UnaryExpr *>(E);
      switch (U->getOp()) {
      case UnaryOpKind::Plus:
        return emitInt(U->getOperand());
      case UnaryOpKind::Minus: {
        int32_t A = emitInt(U->getOperand()), R = newIntReg();
        emit(TapeOpcode::INeg, 0, R, A, -1, -1);
        return R;
      }
      case UnaryOpKind::Not: {
        int32_t A, R = newIntReg();
        if (isFpTy(U->getOperand()->getType())) {
          int32_t F = emitFp(U->getOperand(), -1), Tr = newIntReg();
          emit(TapeOpcode::FTruthy, 0, Tr, F, -1, -1);
          A = Tr;
        } else {
          A = emitInt(U->getOperand());
        }
        emit(TapeOpcode::INot, 0, R, A, -1, -1);
        return R;
      }
      case UnaryOpKind::BitNot: {
        if (!isIntTy(U->getOperand()->getType()))
          bail("operator ~ on a non-integer");
        int32_t A = emitInt(U->getOperand()), R = newIntReg();
        emit(TapeOpcode::IBitNot, 0, R, A, -1, -1);
        return R;
      }
      default:
        bail("unsupported unary operator in integer context");
      }
    }
    case Expr::Kind::Binary:
      return emitIntBinary(static_cast<const BinaryExpr *>(E));
    case Expr::Kind::Conditional: {
      const auto *C = static_cast<const ConditionalExpr *>(E);
      if (!isIntTy(C->getType()))
        bail("conditional in integer context is not integer-typed");
      int32_t Cond = emitCond(C->getCond());
      int32_t Dst = newIntReg();
      int32_t Lelse = newLabel(), Lend = newLabel();
      emit(TapeOpcode::JumpIfZero, 0, -1, Cond, Lelse, -1);
      int32_t Tv = emitInt(C->getTrueExpr());
      emit(TapeOpcode::IMov, 0, Dst, Tv, -1, -1);
      emit(TapeOpcode::Jump, 0, -1, -1, Lend, -1);
      bindLabel(Lelse);
      int32_t Fv = emitInt(C->getFalseExpr());
      emit(TapeOpcode::IMov, 0, Dst, Fv, -1, -1);
      bindLabel(Lend);
      return Dst;
    }
    case Expr::Kind::Cast: {
      const auto *C = static_cast<const CastExpr *>(E);
      if (!isIntTy(C->getOperand()->getType()))
        bail("cast of a sound value to an integer");
      return emitInt(C->getOperand());
    }
    default:
      bail("unsupported expression in integer context");
    }
  }

  int32_t emitIntBinary(const BinaryExpr *B) {
    BinaryOpKind Op = B->getOp();
    // Short-circuit logicals produce strict 0/1, as the tree walker does.
    if (Op == BinaryOpKind::LAnd || Op == BinaryOpKind::LOr) {
      int32_t Dst = newIntReg();
      int32_t A = emitTruthy01(B->getLhs());
      emit(TapeOpcode::IMov, 0, Dst, A, -1, -1);
      int32_t Lend = newLabel();
      emit(Op == BinaryOpKind::LAnd ? TapeOpcode::JumpIfZero
                                    : TapeOpcode::JumpIfNonZero,
           0, -1, A, Lend, -1);
      int32_t R = emitTruthy01(B->getRhs());
      emit(TapeOpcode::IMov, 0, Dst, R, -1, -1);
      bindLabel(Lend);
      return Dst;
    }
    if (B->isComparison()) {
      bool BothInt =
          isIntTy(B->getLhs()->getType()) && isIntTy(B->getRhs()->getType());
      uint8_t Sub = cmpSub(Op);
      int32_t Dst = newIntReg();
      if (BothInt) {
        int32_t L = emitInt(B->getLhs()), R = emitInt(B->getRhs());
        emit(TapeOpcode::ICmp, Sub, Dst, L, R, -1);
      } else {
        // Mixed/float comparison goes through midpoints; integer
        // operands compare as (double)v, which exact() reproduces.
        int32_t L = emitFpOperand(B->getLhs());
        int32_t R = emitFpOperand(B->getRhs());
        emit(TapeOpcode::FCmp, Sub, Dst, L, R, -1);
      }
      return Dst;
    }
    if (!isIntTy(B->getLhs()->getType()) || !isIntTy(B->getRhs()->getType()))
      bail("non-integer operand of an integer operator");
    TapeOpcode Op2;
    switch (Op) {
    case BinaryOpKind::Add: Op2 = TapeOpcode::IAdd; break;
    case BinaryOpKind::Sub: Op2 = TapeOpcode::ISub; break;
    case BinaryOpKind::Mul: Op2 = TapeOpcode::IMul; break;
    case BinaryOpKind::Div: Op2 = TapeOpcode::IDiv; break;
    case BinaryOpKind::Rem: Op2 = TapeOpcode::IRem; break;
    case BinaryOpKind::BitAnd: Op2 = TapeOpcode::IAnd; break;
    case BinaryOpKind::BitOr: Op2 = TapeOpcode::IOr; break;
    case BinaryOpKind::BitXor: Op2 = TapeOpcode::IXor; break;
    case BinaryOpKind::Shl: Op2 = TapeOpcode::IShl; break;
    case BinaryOpKind::Shr: Op2 = TapeOpcode::IShr; break;
    default:
      bail("unsupported integer binary operator");
    }
    int32_t L = emitInt(B->getLhs()), R = emitInt(B->getRhs());
    int32_t Dst = newIntReg();
    emit(Op2, 0, Dst, L, R, -1);
    return Dst;
  }

  static uint8_t cmpSub(BinaryOpKind Op) {
    switch (Op) {
    case BinaryOpKind::Lt: return static_cast<uint8_t>(TapeCmp::Lt);
    case BinaryOpKind::Gt: return static_cast<uint8_t>(TapeCmp::Gt);
    case BinaryOpKind::Le: return static_cast<uint8_t>(TapeCmp::Le);
    case BinaryOpKind::Ge: return static_cast<uint8_t>(TapeCmp::Ge);
    case BinaryOpKind::Eq: return static_cast<uint8_t>(TapeCmp::Eq);
    case BinaryOpKind::Ne: return static_cast<uint8_t>(TapeCmp::Ne);
    default: bail("not a comparison");
    }
  }

  /// Condition value for a branch: any integer works (branches test
  /// against zero, matching truthy()).
  int32_t emitCond(const Expr *E) {
    if (isFpTy(stripParens(E)->getType())) {
      int32_t F = emitFp(E, -1), R = newIntReg();
      emit(TapeOpcode::FTruthy, 0, R, F, -1, -1);
      return R;
    }
    return emitInt(E);
  }

  /// Strict 0/1 truthiness (value position of && / ||).
  int32_t emitTruthy01(const Expr *E) {
    if (isFpTy(stripParens(E)->getType())) {
      int32_t F = emitFp(E, -1), R = newIntReg();
      emit(TapeOpcode::FTruthy, 0, R, F, -1, -1);
      return R;
    }
    int32_t V = emitInt(E);
    int32_t Zero = newIntReg();
    emit(TapeOpcode::IConst, 0, Zero, addIntConst(0), -1, -1);
    int32_t R = newIntReg();
    emit(TapeOpcode::ICmp, static_cast<uint8_t>(TapeCmp::Ne), R, V, Zero, -1);
    return R;
  }

  //===-- floating-point expressions --------------------------------------===//

  /// Emits \p E as an affine value. If \p Dst >= 0 the result lands in
  /// that register; otherwise a register is chosen (a fresh temporary,
  /// or the variable's own register for a plain reference).
  int32_t emitFp(const Expr *E, int32_t Dst) {
    E = stripParens(E);
    switch (E->getKind()) {
    case Expr::Kind::FloatLiteral: {
      int32_t D = Dst < 0 ? newFpV(true) : Dst;
      emit(TapeOpcode::FConst, 0, D,
           addConst(static_cast<const FloatLiteralExpr *>(E)->getValue()), -1,
           -1);
      return D;
    }
    case Expr::Kind::DeclRef: {
      const Binding &B = bindingOf(static_cast<const DeclRefExpr *>(E));
      if (B.Kind != Binding::K::Fp)
        bail("expected a floating-point variable");
      if (Dst < 0 || Dst == B.Idx)
        return B.Idx;
      emit(TapeOpcode::FMov, 0, Dst, B.Idx, -1, -1);
      return Dst;
    }
    case Expr::Kind::Unary: {
      const auto *U = static_cast<const UnaryExpr *>(E);
      switch (U->getOp()) {
      case UnaryOpKind::Plus:
        return emitFp(U->getOperand(), Dst);
      case UnaryOpKind::Minus: {
        int32_t A = emitFpOperand(U->getOperand());
        int32_t D = Dst < 0 ? newFpV(true) : Dst;
        emit(TapeOpcode::FNeg, 0, D, A, -1, -1);
        return D;
      }
      case UnaryOpKind::Deref: {
        ArrayRef R = resolveElement(E);
        int32_t D = Dst < 0 ? newFpV(true) : Dst;
        emit(TapeOpcode::FLoad, 0, D, R.ArrayId, R.FlatReg, -1);
        return D;
      }
      default:
        bail("unsupported unary operator in floating context");
      }
    }
    case Expr::Kind::Binary: {
      const auto *B = static_cast<const BinaryExpr *>(E);
      TapeOpcode Op;
      switch (B->getOp()) {
      case BinaryOpKind::Add: Op = TapeOpcode::FAdd; break;
      case BinaryOpKind::Sub: Op = TapeOpcode::FSub; break;
      case BinaryOpKind::Mul: Op = TapeOpcode::FMul; break;
      case BinaryOpKind::Div: Op = TapeOpcode::FDiv; break;
      default:
        bail("unsupported binary operator in floating context");
      }
      int32_t L = emitFpOperand(B->getLhs());
      int32_t R = emitFpOperand(B->getRhs());
      int32_t D = Dst < 0 ? newFpV(true) : Dst;
      emit(Op, 0, D, L, R, -1);
      return D;
    }
    case Expr::Kind::Subscript: {
      ArrayRef R = resolveElement(E);
      int32_t D = Dst < 0 ? newFpV(true) : Dst;
      emit(TapeOpcode::FLoad, 0, D, R.ArrayId, R.FlatReg, -1);
      return D;
    }
    case Expr::Kind::Call:
      return emitCall(static_cast<const CallExpr *>(E), Dst);
    case Expr::Kind::Cast: {
      const auto *C = static_cast<const CastExpr *>(E);
      const Type *OpTy = C->getOperand()->getType();
      if (isFpTy(OpTy))
        return emitFp(C->getOperand(), Dst);
      if (isIntTy(OpTy)) {
        int32_t I = emitInt(C->getOperand());
        int32_t D = Dst < 0 ? newFpV(true) : Dst;
        emit(TapeOpcode::FFromInt, 0, D, I, -1, -1);
        return D;
      }
      bail("unsupported cast operand");
    }
    case Expr::Kind::Conditional: {
      const auto *C = static_cast<const ConditionalExpr *>(E);
      int32_t Cond = emitCond(C->getCond());
      int32_t D = Dst < 0 ? newFpV(true) : Dst;
      int32_t Lelse = newLabel(), Lend = newLabel();
      emit(TapeOpcode::JumpIfZero, 0, -1, Cond, Lelse, -1);
      emitFpCoerced(C->getTrueExpr(), D);
      emit(TapeOpcode::Jump, 0, -1, -1, Lend, -1);
      bindLabel(Lelse);
      emitFpCoerced(C->getFalseExpr(), D);
      bindLabel(Lend);
      return D;
    }
    case Expr::Kind::IntLiteral:
    default:
      bail("unsupported expression in floating context");
    }
  }

  /// Operand position of an FP operator: integer-typed operands coerce
  /// through exact() — a draw-free conversion, so its position in the
  /// stream is immaterial.
  int32_t emitFpOperand(const Expr *E) {
    const Type *Ty = stripParens(E)->getType();
    if (isIntTy(Ty)) {
      int32_t I = emitInt(E);
      int32_t D = newFpV(true);
      emit(TapeOpcode::FFromInt, 0, D, I, -1, -1);
      return D;
    }
    if (!isFpTy(Ty))
      bail("unsupported operand type in floating context");
    return emitFp(E, -1);
  }

  /// Into-register emission with int coercion (?: arms, decl inits).
  void emitFpCoerced(const Expr *E, int32_t Dst) {
    if (isIntTy(stripParens(E)->getType())) {
      int32_t I = emitInt(E);
      emit(TapeOpcode::FFromInt, 0, Dst, I, -1, -1);
      return;
    }
    emitFp(E, Dst);
  }

  int32_t emitCall(const CallExpr *C, int32_t Dst) {
    const std::string &Name = C->getCallee();
    // All arguments are evaluated before dispatch (tree walker order);
    // the affine coercion of integer args is draw-free so emitting it
    // inline per argument is equivalent.
    struct Fn1Entry { const char *Name; TapeFn1 Id; };
    static const Fn1Entry Unary[] = {
        {"sqrt", TapeFn1::Sqrt}, {"exp", TapeFn1::Exp}, {"log", TapeFn1::Log},
        {"sin", TapeFn1::Sin},   {"cos", TapeFn1::Cos}, {"fabs", TapeFn1::Fabs},
    };
    for (const Fn1Entry &F : Unary) {
      if (Name != F.Name)
        continue;
      if (C->getArgs().size() != 1)
        bail(Name + " arity mismatch");
      int32_t A = emitFpOperand(C->getArgs()[0]);
      int32_t D = Dst < 0 ? newFpV(true) : Dst;
      emit(TapeOpcode::FCall1, static_cast<uint8_t>(F.Id), D, A, -1, -1);
      return D;
    }
    if (Name == "fmax" || Name == "fmin") {
      if (C->getArgs().size() != 2)
        bail(Name + " arity mismatch");
      int32_t A = emitFpOperand(C->getArgs()[0]);
      int32_t B = emitFpOperand(C->getArgs()[1]);
      int32_t D = Dst < 0 ? newFpV(true) : Dst;
      emit(TapeOpcode::FCall2,
           static_cast<uint8_t>(Name == "fmax" ? TapeFn2::Fmax : TapeFn2::Fmin),
           D, A, B, -1);
      return D;
    }
    bail("call to non-builtin function '" + Name + "'");
  }

  //===-- statements ------------------------------------------------------===//

  void emitAssign(const AssignExpr *A) {
    checkNoSideEffects(A->getLhs());
    checkNoSideEffects(A->getRhs());
    const Expr *LHS = stripParens(A->getLhs());
    AssignOpKind Op = A->getOp();

    if (LHS->getKind() == Expr::Kind::DeclRef) {
      const Binding &B = bindingOf(static_cast<const DeclRefExpr *>(LHS));
      switch (B.Kind) {
      case Binding::K::Fp:
        if (Op == AssignOpKind::Assign) {
          emitFpCoerced(A->getRhs(), B.Idx);
        } else {
          int32_t R = emitFpOperand(A->getRhs());
          emit(fpCompoundOp(Op), 0, B.Idx, B.Idx, R, -1);
        }
        return;
      case Binding::K::Int: {
        if (!isIntTy(stripParens(A->getRhs())->getType()))
          bail("assigning a floating value to an integer variable");
        int32_t R = emitInt(A->getRhs());
        if (Op == AssignOpKind::Assign)
          emit(TapeOpcode::IMov, 0, B.Idx, R, -1, -1);
        else
          emit(intCompoundOp(Op), 0, B.Idx, B.Idx, R, -1);
        return;
      }
      case Binding::K::Array:
        bail("whole-array assignment");
      }
    }

    // Element store: lvalue (indices + bounds checks) first, then the
    // right-hand side, as in the tree walker.
    ArrayRef R = resolveElement(LHS);
    if (Op == AssignOpKind::Assign) {
      int32_t V = emitFpOperand(A->getRhs());
      emit(TapeOpcode::FStore, 0, -1, R.ArrayId, R.FlatReg, V);
      return;
    }
    int32_t Rv = emitFpOperand(A->getRhs());
    int32_t Old = newFpV(true);
    emit(TapeOpcode::FLoad, 0, Old, R.ArrayId, R.FlatReg, -1);
    int32_t Res = newFpV(true);
    emit(fpCompoundOp(Op), 0, Res, Old, Rv, -1);
    emit(TapeOpcode::FStore, 0, -1, R.ArrayId, R.FlatReg, Res);
  }

  static TapeOpcode fpCompoundOp(AssignOpKind Op) {
    switch (Op) {
    case AssignOpKind::AddAssign: return TapeOpcode::FAdd;
    case AssignOpKind::SubAssign: return TapeOpcode::FSub;
    case AssignOpKind::MulAssign: return TapeOpcode::FMul;
    case AssignOpKind::DivAssign: return TapeOpcode::FDiv;
    default: bail("unsupported compound assignment");
    }
  }
  static TapeOpcode intCompoundOp(AssignOpKind Op) {
    switch (Op) {
    case AssignOpKind::AddAssign: return TapeOpcode::IAdd;
    case AssignOpKind::SubAssign: return TapeOpcode::ISub;
    case AssignOpKind::MulAssign: return TapeOpcode::IMul;
    case AssignOpKind::DivAssign: return TapeOpcode::IDiv;
    default: bail("unsupported compound assignment");
    }
  }

  void emitIncDec(const UnaryExpr *U) {
    checkNoSideEffects(U->getOperand());
    const Expr *Op = stripParens(U->getOperand());
    if (Op->getKind() != Expr::Kind::DeclRef)
      bail("increment of a non-variable");
    const Binding &B = bindingOf(static_cast<const DeclRefExpr *>(Op));
    if (B.Kind != Binding::K::Int)
      bail("increment of a non-integer variable");
    int32_t One = newIntReg();
    emit(TapeOpcode::IConst, 0, One, addIntConst(1), -1, -1);
    bool Inc = U->getOp() == UnaryOpKind::PreInc ||
               U->getOp() == UnaryOpKind::PostInc;
    emit(Inc ? TapeOpcode::IAdd : TapeOpcode::ISub, 0, B.Idx, B.Idx, One, -1);
  }

  /// Statement-position expression: assignments and increments are the
  /// only permitted mutations; everything else is evaluated for its
  /// effects (symbol draws, bounds checks) and discarded.
  void emitForEffect(const Expr *E) {
    const Expr *S = stripParens(E);
    if (S->getKind() == Expr::Kind::Assign)
      return emitAssign(static_cast<const AssignExpr *>(S));
    if (S->getKind() == Expr::Kind::Unary) {
      const auto *U = static_cast<const UnaryExpr *>(S);
      switch (U->getOp()) {
      case UnaryOpKind::PreInc:
      case UnaryOpKind::PreDec:
      case UnaryOpKind::PostInc:
      case UnaryOpKind::PostDec:
        return emitIncDec(U);
      default:
        break;
      }
    }
    checkNoSideEffects(S);
    const Type *Ty = S->getType();
    if (isFpTy(Ty))
      emitFp(S, -1);
    else if (isIntTy(Ty))
      emitInt(S);
    else
      bail("unsupported expression statement");
  }

  std::vector<int64_t> collectLocalDims(const Type *Ty) {
    std::vector<int64_t> Dims;
    while (Ty && Ty->isArray()) {
      Dims.push_back(static_cast<int64_t>(Ty->getArraySize()));
      Ty = Ty->getElement();
    }
    if (!isFpTy(Ty))
      bail("non-floating array element type");
    return Dims;
  }

  int32_t addArray(std::vector<int64_t> Dims, int32_t ParamIdx) {
    int64_t N = 1;
    for (int64_t D : Dims)
      N *= D;
    TapeArray A;
    A.NumElems = static_cast<int32_t>(N);
    A.Dims = std::move(Dims);
    A.Param = ParamIdx;
    T.Arrays.push_back(std::move(A));
    return static_cast<int32_t>(T.Arrays.size()) - 1;
  }

  void emitLocalDecl(const VarDecl *D) {
    const Type *Ty = D->getType();
    if (!Ty)
      bail("untyped declaration");
    if (Ty->isArray()) {
      if (D->getInit())
        bail("array initializer");
      int32_t Id = addArray(collectLocalDims(Ty), -1);
      emit(TapeOpcode::AInit, 0, -1, Id, -1, -1);
      bind(D->getName(), {Binding::K::Array, Id});
      return;
    }
    if (Ty->isFloating()) {
      int32_t Reg = newFpV(false);
      bind(D->getName(), {Binding::K::Fp, Reg});
      if (const Expr *Init = D->getInit()) {
        checkNoSideEffects(Init);
        emitFpCoerced(Init, Reg);
      } else {
        emit(TapeOpcode::FConst, 0, Reg, addConst(0.0), -1, -1);
      }
      return;
    }
    if (Ty->isInteger()) {
      int32_t Reg = newIntReg();
      bind(D->getName(), {Binding::K::Int, Reg});
      if (const Expr *Init = D->getInit()) {
        checkNoSideEffects(Init);
        if (!isIntTy(stripParens(Init)->getType()))
          bail("floating initializer for an integer variable");
        int32_t R = emitInt(Init);
        emit(TapeOpcode::IMov, 0, Reg, R, -1, -1);
      } else {
        emit(TapeOpcode::IConst, 0, Reg, addIntConst(0), -1, -1);
      }
      return;
    }
    bail("unsupported local declaration type");
  }

  void emitStmt(const Stmt *S) {
    if (!S)
      return;
    switch (S->getKind()) {
    case Stmt::Kind::Compound: {
      Scopes.emplace_back();
      for (const Stmt *Child : static_cast<const CompoundStmt *>(S)->getBody())
        emitStmt(Child);
      Scopes.pop_back();
      return;
    }
    case Stmt::Kind::Decl:
      for (const VarDecl *D : static_cast<const DeclStmt *>(S)->getDecls())
        emitLocalDecl(D);
      return;
    case Stmt::Kind::Expr:
      emitForEffect(static_cast<const ExprStmt *>(S)->getExpr());
      return;
    case Stmt::Kind::If: {
      const auto *I = static_cast<const IfStmt *>(S);
      checkNoSideEffects(I->getCond());
      int32_t C = emitCond(I->getCond());
      int32_t Lelse = newLabel();
      emit(TapeOpcode::JumpIfZero, 0, -1, C, Lelse, -1);
      emitStmt(I->getThen());
      if (I->getElse()) {
        int32_t Lend = newLabel();
        emit(TapeOpcode::Jump, 0, -1, -1, Lend, -1);
        bindLabel(Lelse);
        emitStmt(I->getElse());
        bindLabel(Lend);
      } else {
        bindLabel(Lelse);
      }
      return;
    }
    case Stmt::Kind::While: {
      const auto *W = static_cast<const WhileStmt *>(S);
      int32_t Lcond = newLabel(), Lend = newLabel();
      bindLabel(Lcond);
      checkNoSideEffects(W->getCond());
      int32_t C = emitCond(W->getCond());
      emit(TapeOpcode::JumpIfZero, 0, -1, C, Lend, -1);
      Loops.push_back({Lend, Lcond});
      emitStmt(W->getBody());
      Loops.pop_back();
      emit(TapeOpcode::Jump, 0, -1, -1, Lcond, -1);
      bindLabel(Lend);
      return;
    }
    case Stmt::Kind::DoWhile: {
      const auto *W = static_cast<const DoWhileStmt *>(S);
      int32_t Lbody = newLabel(), Lcond = newLabel(), Lend = newLabel();
      bindLabel(Lbody);
      Loops.push_back({Lend, Lcond});
      emitStmt(W->getBody());
      Loops.pop_back();
      bindLabel(Lcond);
      checkNoSideEffects(W->getCond());
      int32_t C = emitCond(W->getCond());
      emit(TapeOpcode::JumpIfNonZero, 0, -1, C, Lbody, -1);
      bindLabel(Lend);
      return;
    }
    case Stmt::Kind::For: {
      const auto *F = static_cast<const ForStmt *>(S);
      Scopes.emplace_back();
      emitStmt(F->getInit());
      int32_t Lcond = newLabel(), Linc = newLabel(), Lend = newLabel();
      bindLabel(Lcond);
      if (F->getCond()) {
        checkNoSideEffects(F->getCond());
        int32_t C = emitCond(F->getCond());
        emit(TapeOpcode::JumpIfZero, 0, -1, C, Lend, -1);
      }
      Loops.push_back({Lend, Linc});
      emitStmt(F->getBody());
      Loops.pop_back();
      bindLabel(Linc);
      if (F->getInc())
        emitForEffect(F->getInc());
      emit(TapeOpcode::Jump, 0, -1, -1, Lcond, -1);
      bindLabel(Lend);
      Scopes.pop_back();
      return;
    }
    case Stmt::Kind::Return: {
      const auto *R = static_cast<const ReturnStmt *>(S);
      if (!R->getValue()) {
        emit(TapeOpcode::RetVoid, 0, -1, -1, -1, -1);
        return;
      }
      checkNoSideEffects(R->getValue());
      const Type *Ty = stripParens(R->getValue())->getType();
      if (isFpTy(Ty)) {
        int32_t V = emitFp(R->getValue(), -1);
        emit(TapeOpcode::RetF, 0, -1, V, -1, -1);
      } else if (isIntTy(Ty)) {
        int32_t V = emitInt(R->getValue());
        emit(TapeOpcode::RetInt, 0, -1, V, -1, -1);
      } else {
        bail("unsupported return type");
      }
      return;
    }
    case Stmt::Kind::Break:
      if (Loops.empty())
        bail("break outside a loop");
      emit(TapeOpcode::Jump, 0, -1, -1, Loops.back().BreakLbl, -1);
      return;
    case Stmt::Kind::Continue:
      if (Loops.empty())
        bail("continue outside a loop");
      emit(TapeOpcode::Jump, 0, -1, -1, Loops.back().ContinueLbl, -1);
      return;
    case Stmt::Kind::Null:
      return;
    case Stmt::Kind::Pragma: {
      if (!Opts.Prioritize)
        return;
      const auto *P = static_cast<const PragmaStmt *>(S);
      const std::string &Var = P->getPrioritizedVar();
      if (Var.empty())
        return;
      if (Binding *B = lookup(Var)) {
        if (B->Kind == Binding::K::Fp)
          emit(TapeOpcode::FPrioritize, 0, -1, B->Idx, -1, -1);
        else if (B->Kind == Binding::K::Array)
          emit(TapeOpcode::APrioritize, 0, -1, B->Idx, -1, -1);
      }
      return;
    }
    }
    bail("unsupported statement");
  }

  //===-- parameters ------------------------------------------------------===//

  void emitParams() {
    Scopes.emplace_back();
    for (size_t P = 0; P < Fn->getParams().size(); ++P) {
      const VarDecl *D = Fn->getParams()[P];
      const Type *Ty = D->getType();
      TapeParam TP;
      if (!Ty)
        bail("untyped parameter");
      if (Ty->isInteger()) {
        TP.K = TapeParam::Kind::Int;
        TP.Index = newIntReg();
        bind(D->getName(), {Binding::K::Int, TP.Index});
      } else if (Ty->isFloating()) {
        TP.K = TapeParam::Kind::Fp;
        TP.Index = newFpV(false);
        bind(D->getName(), {Binding::K::Fp, TP.Index});
      } else if (Ty->isArray() || Ty->isPointer()) {
        // makeDefaultArg gives unsized extents (and pointers) one
        // element per level.
        std::vector<int64_t> Dims;
        const Type *E = Ty;
        if (E->isPointer()) {
          Dims.push_back(1);
          E = E->getElement();
        } else {
          while (E->isArray()) {
            size_t N = E->getArraySize();
            Dims.push_back(static_cast<int64_t>(N ? N : 1));
            E = E->getElement();
          }
        }
        if (!isFpTy(E))
          bail("unsupported parameter element type");
        TP.K = TapeParam::Kind::Array;
        TP.Index = addArray(std::move(Dims), static_cast<int32_t>(P));
        bind(D->getName(), {Binding::K::Array, TP.Index});
      } else {
        bail("unsupported parameter type");
      }
      T.Params.push_back(TP);
    }
  }

  //===-- peephole fusion -------------------------------------------------===//

  void fuse();
  void resolveLabels();
  void allocateSlots();
};

//===-- def/use tables ------------------------------------------------------===//

static int32_t fpDef(const TapeInst &I) {
  switch (I.Op) {
  case TapeOpcode::FConst:
  case TapeOpcode::FMov:
  case TapeOpcode::FNeg:
  case TapeOpcode::FAdd:
  case TapeOpcode::FSub:
  case TapeOpcode::FMul:
  case TapeOpcode::FDiv:
  case TapeOpcode::FFma:
  case TapeOpcode::FConstBin:
  case TapeOpcode::FLin:
  case TapeOpcode::FFmaC:
  case TapeOpcode::FCall1:
  case TapeOpcode::FCall2:
  case TapeOpcode::FLoad:
  case TapeOpcode::FFromInt:
    return I.Dst;
  default:
    return -1;
  }
}

static int fpUses(const TapeInst &I, int32_t U[3]) {
  switch (I.Op) {
  case TapeOpcode::FMov:
  case TapeOpcode::FNeg:
  case TapeOpcode::FCall1:
  case TapeOpcode::FTruthy:
  case TapeOpcode::FPrioritize:
    U[0] = I.A;
    return 1;
  case TapeOpcode::FAdd:
  case TapeOpcode::FSub:
  case TapeOpcode::FMul:
  case TapeOpcode::FDiv:
  case TapeOpcode::FCall2:
  case TapeOpcode::FCmp:
    U[0] = I.A;
    U[1] = I.B;
    return 2;
  case TapeOpcode::FFma:
    U[0] = I.A;
    U[1] = I.B;
    U[2] = I.C;
    return 3;
  case TapeOpcode::FConstBin:
    U[0] = I.A;
    return 1;
  case TapeOpcode::FLin:
    U[0] = I.A;
    U[1] = I.C;
    return 2;
  case TapeOpcode::FFmaC:
    U[0] = I.A;
    U[1] = I.B;
    return 2;
  case TapeOpcode::FStore:
    U[0] = I.C;
    return 1;
  // The returned register is read at the very end of every path: without
  // this use the liveness pass frees its slot after the last arithmetic
  // read, and a temp then clobbers it (visible for `return x;` where x
  // is a parameter or long-lived local).
  case TapeOpcode::RetF:
    U[0] = I.A;
    return 1;
  default:
    return 0;
  }
}

static bool isFAddSub(const TapeInst &I) {
  return I.Op == TapeOpcode::FAdd || I.Op == TapeOpcode::FSub;
}

void TapeBuilder::fuse() {
  std::vector<TapeInst> &C = T.Code;
  // Use/def counts never change for surviving registers: fusion deletes
  // a (single-def, single-use) pair entirely and moves the remaining
  // operands verbatim, so one upfront count suffices.
  std::vector<int32_t> UseN(NumFpV, 0), DefN(NumFpV, 0);
  for (const TapeInst &I : C) {
    int32_t U[3];
    int N = fpUses(I, U);
    for (int K = 0; K < N; ++K)
      ++UseN[U[K]];
    if (int32_t D = fpDef(I); D >= 0)
      ++DefN[D];
  }
  auto Fusable = [&](int32_t V) {
    return V >= 0 && IsTempV[V] && UseN[V] == 1 && DefN[V] == 1;
  };
  auto LabelAt = [&](size_t Pos) {
    for (int32_t L : Labels)
      if (L == static_cast<int32_t>(Pos))
        return true;
    return false;
  };
  auto Erase = [&](size_t Pos) {
    C.erase(C.begin() + Pos);
    for (int32_t &L : Labels)
      if (L > static_cast<int32_t>(Pos))
        --L;
  };

  size_t I = 0;
  while (I + 1 < C.size()) {
    // A fused op replaces the pair in place; a jump may target the first
    // instruction but never land between the two.
    if (LabelAt(I + 1)) {
      ++I;
      continue;
    }
    const TapeInst P = C[I], Q = C[I + 1];
    bool Did = false;

    // [fconst; fbin] -> fconstbin (the constant still constructs, and
    // draws its symbol if inexact, at the same stream position).
    if (P.Op == TapeOpcode::FConst &&
        (Q.Op == TapeOpcode::FAdd || Q.Op == TapeOpcode::FSub ||
         Q.Op == TapeOpcode::FMul || Q.Op == TapeOpcode::FDiv) &&
        Fusable(P.Dst) && (Q.A == P.Dst) != (Q.B == P.Dst)) {
      unsigned Kind = Q.Op == TapeOpcode::FAdd   ? 0u
                      : Q.Op == TapeOpcode::FSub ? 1u
                      : Q.Op == TapeOpcode::FMul ? 2u
                                                 : 3u;
      bool ConstLhs = Q.A == P.Dst;
      C[I] = {TapeOpcode::FConstBin, constBinSub(Kind, ConstLhs), Q.Dst,
              ConstLhs ? Q.B : Q.A, P.A, -1};
      Did = true;
    }
    // [fmul; fadd/fsub] -> ffma.
    else if (P.Op == TapeOpcode::FMul && isFAddSub(Q) && Fusable(P.Dst) &&
             (Q.A == P.Dst) != (Q.B == P.Dst)) {
      bool MulLhs = Q.A == P.Dst;
      TapeAddVariant V =
          Q.Op == TapeOpcode::FAdd
              ? (MulLhs ? TapeAddVariant::TPlusC : TapeAddVariant::CPlusT)
              : (MulLhs ? TapeAddVariant::TMinusC : TapeAddVariant::CMinusT);
      C[I] = {TapeOpcode::FFma, static_cast<uint8_t>(V), Q.Dst, P.A, P.B,
              MulLhs ? Q.B : Q.A};
      Did = true;
    }
    // [fconstbin(mul); fadd/fsub] -> flin: (c*x) ± y as one dispatch.
    else if (P.Op == TapeOpcode::FConstBin && (P.Sub >> 1) == 2 &&
             isFAddSub(Q) && Fusable(P.Dst) &&
             (Q.A == P.Dst) != (Q.B == P.Dst)) {
      bool MulLhs = Q.A == P.Dst;
      TapeAddVariant V =
          Q.Op == TapeOpcode::FAdd
              ? (MulLhs ? TapeAddVariant::TPlusC : TapeAddVariant::CPlusT)
              : (MulLhs ? TapeAddVariant::TMinusC : TapeAddVariant::CMinusT);
      uint8_t Sub =
          static_cast<uint8_t>(static_cast<uint8_t>(V) << 1 | (P.Sub & 1));
      C[I] = {TapeOpcode::FLin, Sub, Q.Dst, P.A, P.B, MulLhs ? Q.B : Q.A};
      Did = true;
    }
    // [fmul; fconstbin(add/sub)] -> ffmac: (a*b) ± c.
    else if (P.Op == TapeOpcode::FMul && Q.Op == TapeOpcode::FConstBin &&
             (Q.Sub >> 1) <= 1 && Q.A == P.Dst && Fusable(P.Dst)) {
      bool IsSub = (Q.Sub >> 1) == 1, ConstLhs = (Q.Sub & 1) != 0;
      TapeAddVariant V =
          IsSub ? (ConstLhs ? TapeAddVariant::CMinusT : TapeAddVariant::TMinusC)
                : (ConstLhs ? TapeAddVariant::CPlusT : TapeAddVariant::TPlusC);
      C[I] = {TapeOpcode::FFmaC, static_cast<uint8_t>(V), Q.Dst, P.A, P.B,
              Q.B};
      Did = true;
    }

    if (Did) {
      Erase(I + 1);
      ++T.NumFused;
      if (I > 0)
        --I; // a new pair may have formed with the predecessor
    } else {
      ++I;
    }
  }
}

void TapeBuilder::resolveLabels() {
  for (TapeInst &I : T.Code) {
    switch (I.Op) {
    case TapeOpcode::Jump:
    case TapeOpcode::JumpIfZero:
    case TapeOpcode::JumpIfNonZero:
      assert(Labels[I.B] >= 0 && "unbound label");
      I.B = Labels[I.B];
      break;
    default:
      break;
    }
  }
}

//===-- liveness + linear scan ----------------------------------------------===//

void TapeBuilder::allocateSlots() {
  const int32_t N = static_cast<int32_t>(T.Code.size());
  const int32_t NV = NumFpV;
  T.NumFpVRegs = NV;
  if (NV == 0) {
    T.NumFpSlots = 0;
    return;
  }
  const size_t W = (static_cast<size_t>(NV) + 63) / 64;
  std::vector<uint64_t> In(static_cast<size_t>(N) * W, 0),
      Out(static_cast<size_t>(N) * W, 0), Tmp(W);
  auto SetBit = [&](std::vector<uint64_t> &Bs, int32_t I, int32_t V) {
    Bs[static_cast<size_t>(I) * W + V / 64] |= 1ull << (V % 64);
  };

  // Successor table.
  std::vector<std::pair<int32_t, int32_t>> Succ(N, {-1, -1});
  for (int32_t I = 0; I < N; ++I) {
    const TapeInst &Inst = T.Code[I];
    switch (Inst.Op) {
    case TapeOpcode::Jump:
      Succ[I] = {Inst.B, -1};
      break;
    case TapeOpcode::JumpIfZero:
    case TapeOpcode::JumpIfNonZero:
      Succ[I] = {I + 1 < N ? I + 1 : -1, Inst.B};
      break;
    case TapeOpcode::RetF:
    case TapeOpcode::RetInt:
    case TapeOpcode::RetVoid:
      break;
    default:
      Succ[I] = {I + 1 < N ? I + 1 : -1, -1};
      break;
    }
  }

  // Backward iterative dataflow to a fixed point.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (int32_t I = N - 1; I >= 0; --I) {
      std::fill(Tmp.begin(), Tmp.end(), 0);
      for (int32_t S : {Succ[I].first, Succ[I].second})
        if (S >= 0)
          for (size_t K = 0; K < W; ++K)
            Tmp[K] |= In[static_cast<size_t>(S) * W + K];
      for (size_t K = 0; K < W; ++K) {
        if (Out[static_cast<size_t>(I) * W + K] != Tmp[K]) {
          Out[static_cast<size_t>(I) * W + K] = Tmp[K];
          Changed = true;
        }
      }
      // In = (Out \ def) | use
      int32_t D = fpDef(T.Code[I]);
      if (D >= 0)
        Tmp[D / 64] &= ~(1ull << (D % 64));
      int32_t U[3];
      int NU = fpUses(T.Code[I], U);
      for (int K = 0; K < NU; ++K)
        Tmp[U[K] / 64] |= 1ull << (U[K] % 64);
      for (size_t K = 0; K < W; ++K) {
        if (In[static_cast<size_t>(I) * W + K] != Tmp[K]) {
          In[static_cast<size_t>(I) * W + K] = Tmp[K];
          Changed = true;
        }
      }
    }
  }
  (void)SetBit;

  // Conservative intervals covering every point where the vreg is live,
  // defined, or used.
  std::vector<int32_t> Begin(NV, -1), End(NV, -1);
  auto Touch = [&](int32_t V, int32_t I) {
    if (Begin[V] < 0 || I < Begin[V])
      Begin[V] = I;
    if (I > End[V])
      End[V] = I;
  };
  for (int32_t I = 0; I < N; ++I) {
    for (int32_t V = 0; V < NV; ++V) {
      bool Live = (In[static_cast<size_t>(I) * W + V / 64] >> (V % 64)) & 1;
      Live |= (Out[static_cast<size_t>(I) * W + V / 64] >> (V % 64)) & 1;
      if (Live)
        Touch(V, I);
    }
    if (int32_t D = fpDef(T.Code[I]); D >= 0)
      Touch(D, I);
    int32_t U[3];
    int NU = fpUses(T.Code[I], U);
    for (int K = 0; K < NU; ++K)
      Touch(U[K], I);
  }
  // Parameter registers receive their argument before instruction 0.
  for (const TapeParam &P : T.Params)
    if (P.K == TapeParam::Kind::Fp) {
      if (Begin[P.Index] < 0)
        End[P.Index] = 0;
      Begin[P.Index] = 0;
    }

  // Linear scan over intervals sorted by start.
  std::vector<int32_t> Order;
  for (int32_t V = 0; V < NV; ++V)
    if (Begin[V] >= 0)
      Order.push_back(V);
  std::stable_sort(Order.begin(), Order.end(), [&](int32_t A, int32_t B) {
    return Begin[A] < Begin[B];
  });

  std::vector<int32_t> Slot(NV, -1);
  std::multimap<int32_t, int32_t> Active; // End -> vreg
  std::set<int32_t> Free;
  int32_t NumSlots = 0;
  for (int32_t V : Order) {
    while (!Active.empty() && Active.begin()->first < Begin[V]) {
      Free.insert(Slot[Active.begin()->second]);
      Active.erase(Active.begin());
    }
    int32_t S;
    if (!Free.empty()) {
      S = *Free.begin();
      Free.erase(Free.begin());
    } else {
      S = NumSlots++;
    }
    Slot[V] = S;
    Active.emplace(End[V], V);
  }
  T.NumFpSlots = NumSlots;

  // Max interval-overlap depth (the slot count can never exceed it).
  {
    std::vector<std::pair<int32_t, int>> Ev;
    for (int32_t V : Order) {
      Ev.push_back({Begin[V], 1});
      Ev.push_back({End[V] + 1, -1});
    }
    std::sort(Ev.begin(), Ev.end());
    int32_t Cur = 0, Max = 0;
    for (auto &E : Ev) {
      Cur += E.second;
      Max = std::max(Max, Cur);
    }
    T.MaxFpLive = Max;
  }

  for (int32_t V : Order)
    T.FpIntervals.push_back({V, Slot[V], Begin[V], End[V]});

  // Rewrite operands to slots.
  auto Map = [&](int32_t V) { return V < 0 ? V : Slot[V]; };
  for (TapeInst &I : T.Code) {
    switch (I.Op) {
    case TapeOpcode::FConst:
    case TapeOpcode::FLoad:
    case TapeOpcode::FFromInt:
      I.Dst = Map(I.Dst);
      break;
    case TapeOpcode::FMov:
    case TapeOpcode::FNeg:
    case TapeOpcode::FCall1:
      I.Dst = Map(I.Dst);
      I.A = Map(I.A);
      break;
    case TapeOpcode::FAdd:
    case TapeOpcode::FSub:
    case TapeOpcode::FMul:
    case TapeOpcode::FDiv:
    case TapeOpcode::FCall2:
      I.Dst = Map(I.Dst);
      I.A = Map(I.A);
      I.B = Map(I.B);
      break;
    case TapeOpcode::FFma:
      I.Dst = Map(I.Dst);
      I.A = Map(I.A);
      I.B = Map(I.B);
      I.C = Map(I.C);
      break;
    case TapeOpcode::FConstBin:
      I.Dst = Map(I.Dst);
      I.A = Map(I.A);
      break;
    case TapeOpcode::FLin:
      I.Dst = Map(I.Dst);
      I.A = Map(I.A);
      I.C = Map(I.C);
      break;
    case TapeOpcode::FFmaC:
      I.Dst = Map(I.Dst);
      I.A = Map(I.A);
      I.B = Map(I.B);
      break;
    case TapeOpcode::FStore:
      I.C = Map(I.C);
      break;
    case TapeOpcode::FCmp:
      I.A = Map(I.A);
      I.B = Map(I.B);
      break;
    case TapeOpcode::FTruthy:
    case TapeOpcode::FPrioritize:
      I.A = Map(I.A);
      break;
    case TapeOpcode::RetF:
      I.A = Map(I.A);
      break;
    default:
      break;
    }
  }
  for (TapeParam &P : T.Params)
    if (P.K == TapeParam::Kind::Fp)
      P.Index = Map(P.Index);
}

Tape TapeBuilder::compile() {
  if (!Fn->isDefinition())
    bail("not a definition");
  T.Function = Fn->getName();
  emitParams();
  emitStmt(Fn->getBody());
  // Falling off the end returns void, as in the tree walker.
  emit(TapeOpcode::RetVoid, 0, -1, -1, -1, -1);
  if (Opts.Fuse)
    fuse();
  resolveLabels();
  allocateSlots();
  return T;
}

} // namespace

std::optional<Tape> compileToTape(const frontend::FunctionDecl *F,
                                  const TapeCompileOptions &Opts,
                                  std::string *WhyNot) {
  if (!F) {
    if (WhyNot)
      *WhyNot = "null function";
    return std::nullopt;
  }
  try {
    TapeBuilder B(F, Opts);
    return B.compile();
  } catch (const CompileError &E) {
    if (WhyNot)
      *WhyNot = E.Why;
    return std::nullopt;
  }
}

} // namespace core
} // namespace safegen
