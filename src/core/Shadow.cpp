//===- Shadow.cpp ---------------------------------------------------------===//
//
// Part of the SafeGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "core/Shadow.h"

#include <cmath>
#include <sstream>

using namespace safegen;
using namespace safegen::core;

Shadow Shadow::point(double X, size_t N) {
  Shadow Sh(N);
  for (size_t I = 0; I < N; ++I)
    Sh.S[I] = ia::IntervalDD::fromConstant(X);
  return Sh;
}

Shadow Shadow::input(double X, double Deviation,
                     const std::vector<double> &Dirs) {
  Shadow Sh(Dirs.size());
  ia::IntervalDD Base = ia::IntervalDD::fromConstant(X);
  ia::IntervalDD Dev = ia::IntervalDD::fromConstant(Deviation);
  for (size_t I = 0; I < Dirs.size(); ++I)
    Sh.S[I] = Base + ia::IntervalDD::fromConstant(Dirs[I]) * Dev;
  return Sh;
}

namespace {

template <typename Fn>
Shadow zipWith(const Shadow &A, const Shadow &B, Fn F) {
  // A missing side (size 0) poisons the result: the caller lost track of
  // one operand's provenance, so the shadow carries no information.
  if (A.size() != B.size())
    return Shadow();
  Shadow Out(A.size());
  for (size_t I = 0; I < A.size(); ++I)
    Out.S[I] = F(A.S[I], B.S[I]);
  return Out;
}

template <typename Fn> Shadow mapWith(const Shadow &A, Fn F) {
  Shadow Out(A.size());
  for (size_t I = 0; I < A.size(); ++I)
    Out.S[I] = F(A.S[I]);
  return Out;
}

/// Applies a double-endpoint ia:: kernel to a dd sample: collapse
/// outward, transform, lift back. Loses dd tightness (the result is a few
/// double ulps wide) but stays sound — good enough for the elementary
/// functions that have no dd kernels.
template <typename Fn> ia::IntervalDD viaInterval(const ia::IntervalDD &X, Fn F) {
  ia::Interval R = F(X.toInterval());
  if (R.isNaN())
    return ia::IntervalDD::nan();
  return ia::IntervalDD(fp::DD(R.Lo), fp::DD(R.Hi));
}

} // namespace

Shadow core::shadowAdd(const Shadow &A, const Shadow &B) {
  return zipWith(A, B, [](const ia::IntervalDD &X, const ia::IntervalDD &Y) {
    return ia::add(X, Y);
  });
}

Shadow core::shadowSub(const Shadow &A, const Shadow &B) {
  return zipWith(A, B, [](const ia::IntervalDD &X, const ia::IntervalDD &Y) {
    return ia::sub(X, Y);
  });
}

Shadow core::shadowMul(const Shadow &A, const Shadow &B) {
  return zipWith(A, B, [](const ia::IntervalDD &X, const ia::IntervalDD &Y) {
    return ia::mul(X, Y);
  });
}

Shadow core::shadowDiv(const Shadow &A, const Shadow &B) {
  return zipWith(A, B, [](const ia::IntervalDD &X, const ia::IntervalDD &Y) {
    return ia::div(X, Y);
  });
}

Shadow core::shadowNeg(const Shadow &A) {
  return mapWith(A, [](const ia::IntervalDD &X) { return ia::neg(X); });
}

Shadow core::shadowSqrt(const Shadow &A) {
  return mapWith(A, [](const ia::IntervalDD &X) {
    // Any sample poking below zero carries no information (the real sqrt
    // is undefined there); IntervalDD::sqrt would silently clamp.
    if (!X.isNaN() && X.Lo.Hi < 0.0)
      return ia::IntervalDD::nan();
    return ia::sqrt(X);
  });
}

Shadow core::shadowExp(const Shadow &A) {
  return mapWith(A, [](const ia::IntervalDD &X) {
    return viaInterval(X, [](const ia::Interval &I) { return ia::exp(I); });
  });
}

Shadow core::shadowLog(const Shadow &A) {
  return mapWith(A, [](const ia::IntervalDD &X) {
    return viaInterval(X, [](const ia::Interval &I) { return ia::log(I); });
  });
}

Shadow core::shadowSin(const Shadow &A) {
  return mapWith(A, [](const ia::IntervalDD &X) {
    return viaInterval(X, [](const ia::Interval &I) { return ia::sin(I); });
  });
}

Shadow core::shadowCos(const Shadow &A) {
  return mapWith(A, [](const ia::IntervalDD &X) {
    return viaInterval(X, [](const ia::Interval &I) { return ia::cos(I); });
  });
}

Shadow core::shadowAbs(const Shadow &A) {
  return mapWith(A, [](const ia::IntervalDD &X) { return ia::abs(X); });
}

Shadow core::shadowMax(const Shadow &A, const Shadow &B) {
  return zipWith(A, B, [](const ia::IntervalDD &X, const ia::IntervalDD &Y) {
    if (X.isNaN() || Y.isNaN())
      return ia::IntervalDD::nan();
    return ia::IntervalDD(fp::max(X.Lo, Y.Lo), fp::max(X.Hi, Y.Hi));
  });
}

Shadow core::shadowMin(const Shadow &A, const Shadow &B) {
  return zipWith(A, B, [](const ia::IntervalDD &X, const ia::IntervalDD &Y) {
    if (X.isNaN() || Y.isNaN())
      return ia::IntervalDD::nan();
    return ia::IntervalDD(fp::min(X.Lo, Y.Lo), fp::min(X.Hi, Y.Hi));
  });
}

std::string ContainmentReport::str() const {
  if (!Violation)
    return std::string();
  std::ostringstream OS;
  OS.precision(17);
  OS << "sample " << SampleIndex << " real-result enclosure [" << SampleLo
     << ", " << SampleHi << "] lies outside the AA enclosure";
  return OS.str();
}

ContainmentReport core::checkContainment(double Lo, double Hi,
                                         const Shadow &Sh) {
  ContainmentReport R;
  if (std::isnan(Lo) || std::isnan(Hi))
    return R; // Top: contains everything
  for (size_t I = 0; I < Sh.size(); ++I) {
    const ia::IntervalDD &J = Sh.S[I];
    if (J.isNaN())
      continue; // sample carries no information
    ia::Interval JI = J.toInterval();
    // Disjointness proves the violation: the real result lies in JI, and
    // a sound AA enclosure must contain it too.
    if (JI.Lo > Hi || JI.Hi < Lo) {
      R.Violation = true;
      R.SampleIndex = static_cast<int>(I);
      R.SampleLo = JI.Lo;
      R.SampleHi = JI.Hi;
      return R;
    }
  }
  return R;
}
