//===- SafeGen.cpp --------------------------------------------------------===//
//
// Part of the SafeGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "core/SafeGen.h"
#include "core/Passes.h"
#include "frontend/Frontend.h"

using namespace safegen;
using namespace safegen::frontend;
using namespace safegen::core;

SafeGenResult core::compileSource(const std::string &FileName,
                                  const std::string &Source,
                                  const SafeGenOptions &Opts) {
  SafeGenResult Result;
  auto CU = parseSource(FileName, Source);
  if (!CU->Success) {
    Result.Diagnostics = CU->Diags.renderAll();
    return Result;
  }
  ASTContext &Ctx = *CU->Ctx;

  PassManager PM(Ctx, CU->Diags, Opts.Instrument);
  buildSafeGenPipeline(PM, Opts, Result);
  if (Opts.Instrument.PrintPipeline)
    Result.PipelineDescription = PM.describePipeline();

  Result.Success = PM.run();

  const PassManagerReport &Report = PM.report();
  Result.PassTimings = Report.Timings;
  Result.TotalPassSeconds = Report.TotalSeconds;
  Result.PassDumps = Report.ASTDumps;
  Result.Stats = PM.stats().values();
  if (Opts.Instrument.TimePasses)
    Result.TimingReport = Report.renderTimings();
  if (Opts.Instrument.CollectStats)
    Result.StatsReport = PM.stats().render();

  // Diagnostics are rendered exactly once per compile, here at the
  // pipeline's single exit path (success or failure, warnings included).
  Result.Diagnostics = CU->Diags.renderAll();
  return Result;
}

SafeGenResult core::compileFile(const std::string &Path,
                                const SafeGenOptions &Opts) {
  SourceManager Probe;
  if (!Probe.loadFile(Path)) {
    SafeGenResult Result;
    Result.Diagnostics = "error: cannot read '" + Path + "'\n";
    return Result;
  }
  return compileSource(Path, std::string(Probe.getBuffer()), Opts);
}
