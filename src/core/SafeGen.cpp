//===- SafeGen.cpp --------------------------------------------------------===//
//
// Part of the SafeGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "core/SafeGen.h"
#include "analysis/DAG.h"
#include "core/SimdToC.h"
#include "frontend/ASTPrinter.h"
#include "frontend/Frontend.h"

#include <algorithm>

using namespace safegen;
using namespace safegen::frontend;
using namespace safegen::core;

SafeGenResult core::compileSource(const std::string &FileName,
                                  const std::string &Source,
                                  const SafeGenOptions &Opts) {
  SafeGenResult Result;
  auto CU = parseSource(FileName, Source);
  if (!CU->Success) {
    Result.Diagnostics = CU->Diags.renderAll();
    return Result;
  }
  ASTContext &Ctx = *CU->Ctx;

  if (Opts.LowerSimdFirst && !lowerSimdToC(Ctx, CU->Diags)) {
    Result.Diagnostics = CU->Diags.renderAll();
    return Result;
  }

  Result.ConstantsFolded = foldConstants(Ctx);

  const bool Analyze = Opts.RunAnalysis && Opts.Config.Prioritize;
  for (Decl *D : Ctx.tu().Decls) {
    if (D->getKind() != Decl::Kind::Function)
      continue;
    auto *F = static_cast<FunctionDecl *>(D);
    if (!F->isDefinition())
      continue;
    if (!Opts.Functions.empty() &&
        std::find(Opts.Functions.begin(), Opts.Functions.end(),
                  F->getName()) == Opts.Functions.end())
      continue;
    if (Analyze) {
      analysis::MaxReuseOptions AOpts = Opts.AnalysisOptions;
      Result.Reports.push_back(
          analysis::analyzeAndAnnotate(F, Ctx, Opts.Config.K, &AOpts));
    }
    if (Opts.DumpDAG)
      Result.DAGDump += analysis::buildDAG(F).dumpDot();
  }

  RewriteOptions ROpts;
  ROpts.Config = Opts.Config;
  ROpts.Functions = Opts.Functions;
  if (!rewriteToAffine(Ctx, CU->Diags, ROpts)) {
    Result.Diagnostics = CU->Diags.renderAll();
    return Result;
  }

  ASTPrinter Printer;
  Result.OutputSource = Printer.print(Ctx.tu());
  Result.Diagnostics = CU->Diags.renderAll(); // may contain warnings
  Result.Success = true;
  return Result;
}

SafeGenResult core::compileFile(const std::string &Path,
                                const SafeGenOptions &Opts) {
  SourceManager Probe;
  if (!Probe.loadFile(Path)) {
    SafeGenResult Result;
    Result.Diagnostics = "error: cannot read '" + Path + "'\n";
    return Result;
  }
  return compileSource(Path, std::string(Probe.getBuffer()), Opts);
}
