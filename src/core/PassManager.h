//===- PassManager.h - Instrumented pipeline driver -------------*- C++ -*-===//
//
// Part of the SafeGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs a registered sequence of passes over one ASTContext with
/// cross-cutting instrumentation:
///
///   * per-pass wall-clock timings (`--time-passes`),
///   * statistics counters (`--stats`, support/Statistic.h),
///   * AST dumps after named passes (`--print-after=<pass>`),
///   * pipeline introspection (`--print-pipeline`),
///   * selective disabling (`--disable-pass=<name>`),
///   * inter-pass invariant verification (`--verify-each`): after every
///     executed pass the Sema invariants are re-checked
///     (frontend::verifyAST), so a pass that produces an ill-typed AST
///     fails at its own boundary.
///
/// The manager never renders diagnostics itself — the caller renders the
/// engine exactly once after run() returns, so warnings emitted before a
/// failing pass are neither dropped nor duplicated.
///
//===----------------------------------------------------------------------===//

#ifndef SAFEGEN_CORE_PASSMANAGER_H
#define SAFEGEN_CORE_PASSMANAGER_H

#include "core/Pass.h"

#include <memory>
#include <string>
#include <vector>

namespace safegen {
namespace core {

/// Instrumentation knobs, mirrored 1:1 by driver flags.
struct PassManagerOptions {
  bool TimePasses = false;   ///< render a timing report (driver-side)
  bool CollectStats = false; ///< render the statistics report (driver-side)
  bool VerifyEach = false;   ///< re-verify AST invariants after every pass
  bool PrintPipeline = false; ///< describe the pipeline (driver-side)
  /// Dump the AST (via ASTPrinter) after each of these passes.
  std::vector<std::string> PrintAfter;
  /// Skip these passes. Unknown names are diagnosed as warnings.
  std::vector<std::string> DisabledPasses;
};

/// Wall-clock seconds spent in one executed pass.
struct PassTiming {
  std::string Name;
  double Seconds = 0.0;
};

/// Everything run() measured, for the caller to surface.
struct PassManagerReport {
  std::vector<PassTiming> Timings; ///< executed passes, in order
  double TotalSeconds = 0.0;
  std::string ASTDumps;   ///< concatenated `--print-after` dumps
  std::string FailedPass; ///< empty when every pass succeeded

  /// Human-readable timing table (one "name seconds s (pct%)" row per
  /// pass, then a total row).
  std::string renderTimings() const;
};

class PassManager {
public:
  PassManager(frontend::ASTContext &Ctx, DiagnosticsEngine &Diags,
              PassManagerOptions Opts = {});

  /// Appends \p P to the pipeline. Pass names must be unique.
  Pass &addPass(std::unique_ptr<Pass> P);
  /// Convenience: appends a LambdaPass.
  Pass &addPass(std::string Name, LambdaPass::Body Fn,
                std::string Description = "");

  size_t size() const { return Passes.size(); }
  const Pass &getPass(size_t I) const { return *Passes[I]; }
  bool isDisabled(const Pass &P) const;

  /// Comma-separated names of the registered pipeline, in run order;
  /// disabled passes are rendered as "!name".
  std::string describePipeline() const;

  support::StatsRegistry &stats() { return Stats; }
  const PassManagerReport &report() const { return Report; }

  /// Runs every enabled pass in registration order. Stops at the first
  /// failing pass (or the first `--verify-each` violation) and returns
  /// false; the diagnostics engine then holds the reason.
  bool run();

private:
  bool verifyAfter(const Pass &P);

  frontend::ASTContext &Ctx;
  DiagnosticsEngine &Diags;
  PassManagerOptions Opts;
  std::vector<std::unique_ptr<Pass>> Passes;
  support::StatsRegistry Stats;
  PassManagerReport Report;
};

} // namespace core
} // namespace safegen

#endif // SAFEGEN_CORE_PASSMANAGER_H
