//===- Shadow.h - High-precision shadow execution ---------------*- C++ -*-===//
//
// Part of the SafeGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shadow values the soundness-fuzzing oracle rides along the sound
/// interpreter (see DESIGN.md, "Soundness fuzzing"). A Shadow carries one
/// tiny double-double interval per *sample point* of the input box: sample
/// s of an input x ± d is the real number x + e_s·d for a fixed direction
/// e_s in [-1, 1], and every interpreter operation maps the samples
/// through the corresponding real function using sound IntervalDD
/// arithmetic. After the run, each sample interval encloses the exact
/// real-arithmetic result of the executed operation trace at that sample —
/// so an AA enclosure that is *disjoint* from a sample interval proves a
/// soundness violation, while overlap never false-positives (both enclose
/// the same real number when the runtime is sound).
///
/// Shadows follow whatever control-flow path the affine midpoint
/// semantics chose; they never influence it. That matches the paper's
/// per-operation containment invariant (Eq. (1)-(5)), which composes along
/// the executed path only.
///
//===----------------------------------------------------------------------===//

#ifndef SAFEGEN_CORE_SHADOW_H
#define SAFEGEN_CORE_SHADOW_H

#include "ia/Interval.h"
#include "ia/IntervalDD.h"

#include <memory>
#include <string>
#include <vector>

namespace safegen {
namespace core {

/// One high-precision shadow: a vector of per-sample enclosures of the
/// exact real result of the operation trace so far.
struct Shadow {
  std::vector<ia::IntervalDD> S;

  Shadow() = default;
  explicit Shadow(size_t N) : S(N) {}

  size_t size() const { return S.size(); }

  /// All samples start at the exactly known point \p X (constants,
  /// integer coercions).
  static Shadow point(double X, size_t N);
  /// Sample s starts at x + Dirs[s]·Deviation, soundly enclosed in dd
  /// (Dirs values must lie in [-1, 1] so the sample stays inside the
  /// input box). Requires upward rounding mode.
  static Shadow input(double X, double Deviation,
                      const std::vector<double> &Dirs);
};

/// Shared ownership so Value copies stay cheap; immutable once built.
using ShadowPtr = std::shared_ptr<const Shadow>;

/// \name Elementwise real-arithmetic transfer functions.
/// All require upward rounding mode (the elementary fallbacks collapse to
/// double-endpoint ia:: kernels, which do). A sample that leaves the
/// domain of the real function becomes the NaN interval ("no
/// information") and is skipped by containment checks.
/// @{
Shadow shadowAdd(const Shadow &A, const Shadow &B);
Shadow shadowSub(const Shadow &A, const Shadow &B);
Shadow shadowMul(const Shadow &A, const Shadow &B);
Shadow shadowDiv(const Shadow &A, const Shadow &B);
Shadow shadowNeg(const Shadow &A);
Shadow shadowSqrt(const Shadow &A);
Shadow shadowExp(const Shadow &A);
Shadow shadowLog(const Shadow &A);
Shadow shadowSin(const Shadow &A);
Shadow shadowCos(const Shadow &A);
Shadow shadowAbs(const Shadow &A);
Shadow shadowMax(const Shadow &A, const Shadow &B);
Shadow shadowMin(const Shadow &A, const Shadow &B);
/// @}

/// Containment verdict of one oracle check.
struct ContainmentReport {
  bool Violation = false;
  int SampleIndex = -1;   ///< first violating sample
  double SampleLo = 0.0;  ///< its shadow enclosure (collapsed to double)
  double SampleHi = 0.0;
  std::string str() const; ///< human-readable one-liner (empty if ok)
};

/// Checks that the AA enclosure [Lo, Hi] can contain each sample's real
/// result: a violation is proven iff some non-NaN sample interval is
/// *disjoint* from [Lo, Hi]. A NaN AA enclosure means Top ("value can be
/// anything") and trivially passes; NaN samples carry no information and
/// are skipped.
ContainmentReport checkContainment(double Lo, double Hi, const Shadow &Sh);

} // namespace core
} // namespace safegen

#endif // SAFEGEN_CORE_SHADOW_H
