//===- IntervalDD.cpp -----------------------------------------------------===//
//
// Part of the SafeGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "ia/IntervalDD.h"

using namespace safegen;
using namespace safegen::ia;
using namespace safegen::fp;

IntervalDD IntervalDD::fromConstant(double X) {
  if (std::isnan(X))
    return IntervalDD::nan();
  // A double constant is exactly representable as a dd value; the 1-ulp
  // uncertainty of the *source text* is handled by the caller (the affine
  // and interval front ends widen constants themselves).
  return IntervalDD(DD(X), DD(X));
}

Interval IntervalDD::toInterval() const {
  if (isNaN())
    return Interval::nan();
  // Round each dd endpoint outward to a double.
  double L = Lo.Hi;
  if (Lo.Lo < 0.0)
    L = std::nextafter(L, -std::numeric_limits<double>::infinity());
  double H = Hi.Hi;
  if (Hi.Lo > 0.0)
    H = std::nextafter(H, std::numeric_limits<double>::infinity());
  return Interval(L, H);
}

/// Operand-magnitude scale for the pad of one dd add/sub (see fp::padUp).
static double addScale(const DD &X, const DD &Y) {
  return fp::addRU(std::fabs(X.Hi), std::fabs(Y.Hi));
}

IntervalDD ia::add(const IntervalDD &A, const IntervalDD &B) {
  if (A.isNaN() || B.isNaN())
    return IntervalDD::nan();
  return IntervalDD(padDown(fp::add(A.Lo, B.Lo), addScale(A.Lo, B.Lo)),
                    padUp(fp::add(A.Hi, B.Hi), addScale(A.Hi, B.Hi)));
}

IntervalDD ia::sub(const IntervalDD &A, const IntervalDD &B) {
  if (A.isNaN() || B.isNaN())
    return IntervalDD::nan();
  return IntervalDD(padDown(fp::sub(A.Lo, B.Hi), addScale(A.Lo, B.Hi)),
                    padUp(fp::sub(A.Hi, B.Lo), addScale(A.Hi, B.Lo)));
}

IntervalDD ia::neg(const IntervalDD &A) {
  if (A.isNaN())
    return IntervalDD::nan();
  return IntervalDD(-A.Hi, -A.Lo);
}

/// Candidate product with 0*inf resolved to 0 (exact-zero annihilation).
static DD mulCand(const DD &X, const DD &Y) {
  if ((X.Hi == 0.0 && X.Lo == 0.0) || (Y.Hi == 0.0 && Y.Lo == 0.0))
    return DD(0.0);
  return fp::mul(X, Y);
}

IntervalDD ia::mul(const IntervalDD &A, const IntervalDD &B) {
  if (A.isNaN() || B.isNaN())
    return IntervalDD::nan();
  DD C1 = mulCand(A.Lo, B.Lo), C2 = mulCand(A.Lo, B.Hi);
  DD C3 = mulCand(A.Hi, B.Lo), C4 = mulCand(A.Hi, B.Hi);
  DD L = fp::min(fp::min(C1, C2), fp::min(C3, C4));
  DD U = fp::max(fp::max(C1, C2), fp::max(C3, C4));
  double MaxA = std::fmax(std::fabs(A.Lo.Hi), std::fabs(A.Hi.Hi));
  double MaxB = std::fmax(std::fabs(B.Lo.Hi), std::fabs(B.Hi.Hi));
  double Scale = fp::mulRU(MaxA, MaxB);
  return IntervalDD(padDown(L, Scale), padUp(U, Scale));
}

IntervalDD ia::div(const IntervalDD &A, const IntervalDD &B) {
  if (A.isNaN() || B.isNaN())
    return IntervalDD::nan();
  if (B.containsZero()) {
    if (fp::lessEqual(B.Hi, B.Lo)) // degenerate [0,0]
      return IntervalDD::nan();
    return IntervalDD::entire();
  }
  DD C1 = fp::div(A.Lo, B.Lo), C2 = fp::div(A.Lo, B.Hi);
  DD C3 = fp::div(A.Hi, B.Lo), C4 = fp::div(A.Hi, B.Hi);
  DD L = fp::min(fp::min(C1, C2), fp::min(C3, C4));
  DD U = fp::max(fp::max(C1, C2), fp::max(C3, C4));
  // The dd division error is output-relative (no catastrophic internal
  // cancellation relative to |Q|); 2^10 margin covers its refinement steps.
  double Scale =
      fp::mulRU(1024.0, std::fmax(std::fabs(L.Hi), std::fabs(U.Hi)));
  return IntervalDD(padDown(L, Scale), padUp(U, Scale));
}

IntervalDD ia::abs(const IntervalDD &A) {
  if (A.isNaN())
    return IntervalDD::nan();
  if (!fp::less(A.Lo, DD(0.0)))
    return A;
  if (!fp::less(DD(0.0), A.Hi))
    return neg(A);
  return IntervalDD(DD(0.0), fp::max(-A.Lo, A.Hi));
}

IntervalDD ia::sqrt(const IntervalDD &A) {
  if (A.isNaN() || A.Hi.Hi < 0.0)
    return IntervalDD::nan();
  DD LoClamped = fp::less(A.Lo, DD(0.0)) ? DD(0.0) : A.Lo;
  DD L = fp::sqrt(LoClamped);
  DD U = fp::sqrt(A.Hi);
  double Scale = fp::mulRU(1024.0, std::fabs(U.Hi));
  return IntervalDD(padDown(L, Scale), padUp(U, Scale));
}

Tribool ia::less(const IntervalDD &A, const IntervalDD &B) {
  if (A.isNaN() || B.isNaN())
    return Tribool::Unknown;
  if (fp::less(A.Hi, B.Lo))
    return Tribool::True;
  if (!fp::less(A.Lo, B.Hi))
    return Tribool::False;
  return Tribool::Unknown;
}

Tribool ia::lessEqual(const IntervalDD &A, const IntervalDD &B) {
  if (A.isNaN() || B.isNaN())
    return Tribool::Unknown;
  if (fp::lessEqual(A.Hi, B.Lo))
    return Tribool::True;
  if (fp::less(B.Hi, A.Lo))
    return Tribool::False;
  return Tribool::Unknown;
}
