//===- Interval.cpp -------------------------------------------------------===//
//
// Part of the SafeGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "ia/Interval.h"
#include "fp/DoubleDouble.h"

using namespace safegen;
using namespace safegen::ia;
using namespace safegen::fp;

Interval Interval::fromConstant(double X) {
  if (std::isnan(X))
    return Interval::nan();
  if (std::isinf(X))
    return Interval(X, X);
  double U = fp::ulp(X);
  // Rounding-mode independent: widen with nextafter-based ulp steps.
  return Interval(X - U, X + U);
}

Interval ia::add(const Interval &A, const Interval &B) {
  if (A.isNaN() || B.isNaN())
    return Interval::nan();
  return Interval(addRD(A.Lo, B.Lo), addRU(A.Hi, B.Hi));
}

Interval ia::sub(const Interval &A, const Interval &B) {
  if (A.isNaN() || B.isNaN())
    return Interval::nan();
  return Interval(subRD(A.Lo, B.Hi), subRU(A.Hi, B.Lo));
}

Interval ia::neg(const Interval &A) {
  if (A.isNaN())
    return Interval::nan();
  return Interval(-A.Hi, -A.Lo);
}

/// Directed product that resolves IEEE 0*inf = NaN to the interval-correct
/// candidate 0 (an exact zero endpoint annihilates any magnitude).
static double mulCandRD(double X, double Y) {
  if (X == 0.0 || Y == 0.0)
    return 0.0;
  return mulRD(X, Y);
}
static double mulCandRU(double X, double Y) {
  if (X == 0.0 || Y == 0.0)
    return 0.0;
  return mulRU(X, Y);
}

Interval ia::mul(const Interval &A, const Interval &B) {
  if (A.isNaN() || B.isNaN())
    return Interval::nan();
  double L = std::min(std::min(mulCandRD(A.Lo, B.Lo), mulCandRD(A.Lo, B.Hi)),
                      std::min(mulCandRD(A.Hi, B.Lo), mulCandRD(A.Hi, B.Hi)));
  double U = std::max(std::max(mulCandRU(A.Lo, B.Lo), mulCandRU(A.Lo, B.Hi)),
                      std::max(mulCandRU(A.Hi, B.Lo), mulCandRU(A.Hi, B.Hi)));
  return Interval(L, U);
}

Interval ia::div(const Interval &A, const Interval &B) {
  if (A.isNaN() || B.isNaN())
    return Interval::nan();
  if (B.containsZero()) {
    // Division by an interval straddling zero: the result is unbounded. If
    // the divisor is exactly [0,0] the quotient carries no information.
    if (B.isPoint())
      return Interval::nan();
    return Interval::entire();
  }
  double L = std::min(std::min(divRD(A.Lo, B.Lo), divRD(A.Lo, B.Hi)),
                      std::min(divRD(A.Hi, B.Lo), divRD(A.Hi, B.Hi)));
  double U = std::max(std::max(divRU(A.Lo, B.Lo), divRU(A.Lo, B.Hi)),
                      std::max(divRU(A.Hi, B.Lo), divRU(A.Hi, B.Hi)));
  return Interval(L, U);
}

Interval ia::abs(const Interval &A) {
  if (A.isNaN())
    return Interval::nan();
  if (A.Lo >= 0.0)
    return A;
  if (A.Hi <= 0.0)
    return neg(A);
  return Interval(0.0, std::max(-A.Lo, A.Hi));
}

Interval ia::sqrt(const Interval &A) {
  if (A.isNaN() || A.Hi < 0.0)
    return Interval::nan();
  SAFEGEN_ASSERT_ROUND_UP();
  double LoClamped = A.Lo < 0.0 ? 0.0 : A.Lo;
  // Hardware sqrt is correctly rounded and honours MXCSR: in upward mode
  // sqrt(x) >= true sqrt.
  double U = std::sqrt(A.Hi);
  double SU = std::sqrt(LoClamped); // upward-rounded sqrt of the low end
  // Tight lower bound: SU is correct iff SU*SU <= LoClamped exactly; check
  // with a downward product, else step one ulp down (still sound).
  double L = SU;
  if (mulRD(SU, SU) > LoClamped)
    L = std::nextafter(SU, 0.0);
  return Interval(L, U);
}

/// Widens a libm result by a factor-of-2 ulp margin in the given direction;
/// glibc's exp/log are faithful (<1 ulp off) so 2 ulps is conservative.
static double widenUp(double X) {
  return std::nextafter(std::nextafter(X, HUGE_VAL), HUGE_VAL);
}
static double widenDown(double X) {
  return std::nextafter(std::nextafter(X, -HUGE_VAL), -HUGE_VAL);
}

Interval ia::exp(const Interval &A) {
  if (A.isNaN())
    return Interval::nan();
  double L = widenDown(std::exp(A.Lo));
  if (L < 0.0)
    L = 0.0;
  return Interval(L, widenUp(std::exp(A.Hi)));
}

Interval ia::log(const Interval &A) {
  if (A.isNaN() || A.Hi <= 0.0)
    return Interval::nan();
  double LoClamped = A.Lo <= 0.0
                         ? -std::numeric_limits<double>::infinity()
                         : widenDown(std::log(A.Lo));
  return Interval(LoClamped, widenUp(std::log(A.Hi)));
}

namespace {

/// 2π in double-double (error ~1e-33).
const fp::DD TwoPi(6.283185307179586232e+00, 2.449293598294706414e-16);
/// π in double-double.
const fp::DD Pi(3.141592653589793116e+00, 1.224646799147353207e-16);

bool mayContainPhaseImpl(double Lo, double Hi, double Phase,
                         const fp::DD &Period) {
  // n ranges over integers with Phase + Period*n in [Lo, Hi]:
  // n in [(Lo-Phase)/Period, (Hi-Phase)/Period].
  fp::DD NLo = fp::div(fp::sub(fp::DD(Lo), fp::DD(Phase)), Period);
  fp::DD NHi = fp::div(fp::sub(fp::DD(Hi), fp::DD(Phase)), Period);
  // Margin: dd division error plus the argument magnitude scaled; 2^-40
  // is enormous headroom for |x| < 2^45.
  const double Margin = 0x1p-40;
  double FloorLo = std::floor(NLo.toDouble() - Margin);
  double FloorHi = std::floor(NHi.toDouble() + Margin);
  return FloorHi > FloorLo ||
         std::fabs(NLo.toDouble() - std::round(NLo.toDouble())) < Margin ||
         std::fabs(NHi.toDouble() - std::round(NHi.toDouble())) < Margin;
}

/// True when some point x ≡ Phase (mod 2π) certainly or possibly lies in
/// [Lo, Hi]; errs on the side of "yes" (which only widens results).
bool mayContainPhase(double Lo, double Hi, double Phase) {
  return mayContainPhaseImpl(Lo, Hi, Phase, TwoPi);
}

/// Sound endpoint evaluation: libm's sin/cos are faithful for these
/// magnitudes; widen by 4 ulps (plus clamp into [-1, 1]).
void trigEndpoint(double X, double (*Fn)(double), double &Lo, double &Hi) {
  double V = Fn(X);
  Lo = std::fmax(-1.0, V - 4.0 * fp::ulp(V == 0.0 ? 1e-300 : V));
  Hi = std::fmin(1.0, V + 4.0 * fp::ulp(V == 0.0 ? 1e-300 : V));
}

Interval trigRange(const Interval &A, double (*Fn)(double), double MaxPhase,
                   double MinPhase) {
  if (A.isNaN())
    return Interval::nan();
  constexpr double Big = 0x1p45;
  if (std::fabs(A.Lo) > Big || std::fabs(A.Hi) > Big ||
      fp::subRU(A.Hi, A.Lo) >= 6.283185307179587)
    return Interval(-1.0, 1.0);
  double LoL, LoH, HiL, HiH;
  trigEndpoint(A.Lo, Fn, LoL, LoH);
  trigEndpoint(A.Hi, Fn, HiL, HiH);
  double Lo = std::fmin(LoL, HiL);
  double Hi = std::fmax(LoH, HiH);
  if (mayContainPhase(A.Lo, A.Hi, MaxPhase))
    Hi = 1.0;
  if (mayContainPhase(A.Lo, A.Hi, MinPhase))
    Lo = -1.0;
  return Interval(Lo, Hi);
}

} // namespace

Interval ia::sin(const Interval &A) {
  // sin peaks at pi/2 (mod 2pi), bottoms at -pi/2.
  return trigRange(A, std::sin, 1.5707963267948966, -1.5707963267948966);
}

Interval ia::cos(const Interval &A) {
  // cos peaks at 0 (mod 2pi), bottoms at pi.
  return trigRange(A, std::cos, 0.0, 3.141592653589793);
}

bool ia::mayContainHalfTurnPhase(double Lo, double Hi, double Phase) {
  return mayContainPhaseImpl(Lo, Hi, Phase, Pi);
}

Tribool ia::less(const Interval &A, const Interval &B) {
  if (A.isNaN() || B.isNaN())
    return Tribool::Unknown;
  if (A.Hi < B.Lo)
    return Tribool::True;
  if (A.Lo >= B.Hi)
    return Tribool::False;
  return Tribool::Unknown;
}

Tribool ia::lessEqual(const Interval &A, const Interval &B) {
  if (A.isNaN() || B.isNaN())
    return Tribool::Unknown;
  if (A.Hi <= B.Lo)
    return Tribool::True;
  if (A.Lo > B.Hi)
    return Tribool::False;
  return Tribool::Unknown;
}

Tribool ia::equal(const Interval &A, const Interval &B) {
  if (A.isNaN() || B.isNaN())
    return Tribool::Unknown;
  if (A.isPoint() && B.isPoint() && A.Lo == B.Lo)
    return Tribool::True;
  if (A.Hi < B.Lo || B.Hi < A.Lo)
    return Tribool::False;
  return Tribool::Unknown;
}

Interval ia::hull(const Interval &A, const Interval &B) {
  if (A.isNaN() || B.isNaN())
    return Interval::nan();
  return Interval(std::min(A.Lo, B.Lo), std::max(A.Hi, B.Hi));
}
