//===- Interval.h - Sound interval arithmetic (f64 endpoints) --*- C++ -*-===//
//
// Part of the SafeGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interval arithmetic with double endpoints — the sound baseline the paper
/// compares against (the code IGen generates, Sec. II-A/II-C, "IGen-f64" in
/// Fig. 9). Every operation requires the FPU to be in upward-rounding mode
/// (see fp/Rounding.h); lower endpoints use RD(x) = -RU(-x).
///
/// Soundness contract: for inputs [al,au] ∋ a and [bl,bu] ∋ b, the result
/// interval contains the exact real-arithmetic result of the operation.
/// NaN endpoints mean "no information" (the value may be anything,
/// including NaN), matching the paper's conventions in Sec. IV-A.
///
//===----------------------------------------------------------------------===//

#ifndef SAFEGEN_IA_INTERVAL_H
#define SAFEGEN_IA_INTERVAL_H

#include "fp/Rounding.h"
#include "fp/Ulp.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace safegen {
namespace ia {

/// Tri-state result of a sound comparison: the predicate certainly holds,
/// certainly does not hold, or cannot be decided from the ranges.
enum class Tribool { False, True, Unknown };

/// A closed interval [Lo, Hi] of doubles, Lo <= Hi (or NaN endpoints for
/// "no information").
class Interval {
public:
  double Lo = 0.0;
  double Hi = 0.0;

  Interval() = default;
  /// A degenerate (point) interval. The point itself is assumed exact.
  Interval(double Point) : Lo(Point), Hi(Point) {}
  Interval(double Lo, double Hi) : Lo(Lo), Hi(Hi) {}

  /// The interval [-inf, +inf].
  static Interval entire() {
    return Interval(-std::numeric_limits<double>::infinity(),
                    std::numeric_limits<double>::infinity());
  }
  /// The "no information" interval (NaN endpoints).
  static Interval nan() {
    return Interval(std::numeric_limits<double>::quiet_NaN(),
                    std::numeric_limits<double>::quiet_NaN());
  }
  /// The tightest interval around \p X containing [X - ulp(X), X + ulp(X)];
  /// used for inexact source constants (paper Sec. IV-B).
  static Interval fromConstant(double X);

  bool isNaN() const { return std::isnan(Lo) || std::isnan(Hi); }
  bool isPoint() const { return Lo == Hi; }
  bool contains(double X) const { return !isNaN() && Lo <= X && X <= Hi; }
  bool containsZero() const { return contains(0.0); }

  double mid() const { return 0.5 * (Lo + Hi); }
  /// Upper bound on the radius (requires upward mode).
  double rad() const { return fp::mulRU(0.5, fp::subRU(Hi, Lo)); }
  double width() const { return Hi - Lo; }
};

/// \name Arithmetic (all require upward rounding mode).
/// @{
Interval add(const Interval &A, const Interval &B);
Interval sub(const Interval &A, const Interval &B);
Interval mul(const Interval &A, const Interval &B);
Interval div(const Interval &A, const Interval &B);
Interval neg(const Interval &A);
Interval sqrt(const Interval &A);
Interval abs(const Interval &A);
/// exp/log with conservative 2-ulp widening of the (not correctly rounded)
/// libm results.
Interval exp(const Interval &A);
Interval log(const Interval &A);
/// Sound sine/cosine: exact-quadrant analysis (double-double reduction
/// with explicit safety margins) for |x| < 2^45, the trivial [-1, 1]
/// beyond that.
Interval sin(const Interval &A);
Interval cos(const Interval &A);

inline Interval operator+(const Interval &A, const Interval &B) {
  return add(A, B);
}
inline Interval operator-(const Interval &A, const Interval &B) {
  return sub(A, B);
}
inline Interval operator*(const Interval &A, const Interval &B) {
  return mul(A, B);
}
inline Interval operator/(const Interval &A, const Interval &B) {
  return div(A, B);
}
inline Interval operator-(const Interval &A) { return neg(A); }
/// @}

/// \name Sound comparisons.
/// @{
Tribool less(const Interval &A, const Interval &B);
Tribool lessEqual(const Interval &A, const Interval &B);
Tribool equal(const Interval &A, const Interval &B);
/// @}

/// Smallest interval containing both A and B.
Interval hull(const Interval &A, const Interval &B);

/// True when some x ≡ \p Phase (mod π) may lie in [Lo, Hi] — the
/// critical-point test the affine sin/cos linearization uses (errs toward
/// "yes"; only valid for |Lo|,|Hi| < 2^45).
bool mayContainHalfTurnPhase(double Lo, double Hi, double Phase);

} // namespace ia
} // namespace safegen

#endif // SAFEGEN_IA_INTERVAL_H
