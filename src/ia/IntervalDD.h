//===- IntervalDD.h - Sound interval arithmetic, dd endpoints --*- C++ -*-===//
//
// Part of the SafeGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interval arithmetic with double-double endpoints — the "IGen-dd"
/// baseline of Fig. 9. Soundness under directed rounding is obtained by
/// padding each dd kernel result with fp::padUp/padDown (see
/// fp/DoubleDouble.h and DESIGN.md §2), so endpoints certify up to ~98
/// bits instead of dd's theoretical ~104 — the comparison shape vs f64
/// intervals and vs dda affine forms is unaffected.
///
//===----------------------------------------------------------------------===//

#ifndef SAFEGEN_IA_INTERVALDD_H
#define SAFEGEN_IA_INTERVALDD_H

#include "fp/DoubleDouble.h"
#include "ia/Interval.h"

namespace safegen {
namespace ia {

/// A closed interval [Lo, Hi] with double-double endpoints.
class IntervalDD {
public:
  fp::DD Lo;
  fp::DD Hi;

  IntervalDD() = default;
  IntervalDD(double Point) : Lo(Point), Hi(Point) {}
  IntervalDD(fp::DD Lo, fp::DD Hi) : Lo(Lo), Hi(Hi) {}

  static IntervalDD entire() {
    return IntervalDD(fp::DD(-std::numeric_limits<double>::infinity()),
                      fp::DD(std::numeric_limits<double>::infinity()));
  }
  static IntervalDD nan() {
    return IntervalDD(fp::DD(std::numeric_limits<double>::quiet_NaN()),
                      fp::DD(std::numeric_limits<double>::quiet_NaN()));
  }
  static IntervalDD fromConstant(double X);

  bool isNaN() const { return Lo.isNaN() || Hi.isNaN(); }
  bool containsZero() const {
    return !isNaN() && fp::lessEqual(Lo, fp::DD(0.0)) &&
           fp::lessEqual(fp::DD(0.0), Hi);
  }
  bool contains(double X) const {
    return !isNaN() && fp::lessEqual(Lo, fp::DD(X)) &&
           fp::lessEqual(fp::DD(X), Hi);
  }

  /// The interval collapsed to double endpoints (outward-rounded).
  Interval toInterval() const;
};

IntervalDD add(const IntervalDD &A, const IntervalDD &B);
IntervalDD sub(const IntervalDD &A, const IntervalDD &B);
IntervalDD mul(const IntervalDD &A, const IntervalDD &B);
IntervalDD div(const IntervalDD &A, const IntervalDD &B);
IntervalDD neg(const IntervalDD &A);
IntervalDD sqrt(const IntervalDD &A);
IntervalDD abs(const IntervalDD &A);

inline IntervalDD operator+(const IntervalDD &A, const IntervalDD &B) {
  return add(A, B);
}
inline IntervalDD operator-(const IntervalDD &A, const IntervalDD &B) {
  return sub(A, B);
}
inline IntervalDD operator*(const IntervalDD &A, const IntervalDD &B) {
  return mul(A, B);
}
inline IntervalDD operator/(const IntervalDD &A, const IntervalDD &B) {
  return div(A, B);
}
inline IntervalDD operator-(const IntervalDD &A) { return neg(A); }

Tribool less(const IntervalDD &A, const IntervalDD &B);
Tribool lessEqual(const IntervalDD &A, const IntervalDD &B);

} // namespace ia
} // namespace safegen

#endif // SAFEGEN_IA_INTERVALDD_H
