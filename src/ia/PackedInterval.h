//===- PackedInterval.h - SIMD interval arithmetic --------------*- C++ -*-===//
//
// Part of the SafeGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SIMD-optimized interval arithmetic in the style IGen generates (paper
/// Sec. II-C: "IGen can generate SIMD-optimized implementations of IA").
/// An interval is kept in one __m128d in *flipped-low* form (-lo, hi):
/// under upward rounding a single vector addition then rounds both
/// endpoints outward at once; multiplication evaluates all four candidate
/// products in one __m256d per direction. Results are identical to the
/// scalar ia::Interval ops for finite inputs (asserted by the tests);
/// non-finite inputs fall back to the scalar path.
///
//===----------------------------------------------------------------------===//

#ifndef SAFEGEN_IA_PACKEDINTERVAL_H
#define SAFEGEN_IA_PACKEDINTERVAL_H

#include "ia/Interval.h"

#if SAFEGEN_HAVE_AVX2
#include <immintrin.h>
#endif

namespace safegen {
namespace ia {

#if SAFEGEN_HAVE_AVX2

/// An interval packed as (-Lo, Hi). All operations require upward
/// rounding mode (MXCSR applies to vector instructions).
class PackedInterval {
public:
  PackedInterval() : V(_mm_setzero_pd()) {}
  explicit PackedInterval(__m128d V) : V(V) {}
  explicit PackedInterval(const Interval &I)
      : V(_mm_set_pd(I.Hi, -I.Lo)) {}
  PackedInterval(double Lo, double Hi) : V(_mm_set_pd(Hi, -Lo)) {}

  Interval toInterval() const {
    alignas(16) double Lanes[2];
    _mm_store_pd(Lanes, V);
    return Interval(-Lanes[0], Lanes[1]);
  }
  double lo() const { return -_mm_cvtsd_f64(V); }
  double hi() const {
    return _mm_cvtsd_f64(_mm_unpackhi_pd(V, V));
  }
  bool isFinite() const {
    Interval I = toInterval();
    return std::isfinite(I.Lo) && std::isfinite(I.Hi);
  }

  __m128d raw() const { return V; }

private:
  __m128d V;
};

/// A + B: one vector add — (-la) + (-lb) = -(la + lb) rounds the low
/// endpoint down while hi rounds up, both via MXCSR-upward.
inline PackedInterval add(const PackedInterval &A, const PackedInterval &B) {
  SAFEGEN_ASSERT_ROUND_UP();
  return PackedInterval(_mm_add_pd(A.raw(), B.raw()));
}

/// -A: swap the lanes.
inline PackedInterval neg(const PackedInterval &A) {
  return PackedInterval(_mm_shuffle_pd(A.raw(), A.raw(), 0b01));
}

inline PackedInterval sub(const PackedInterval &A, const PackedInterval &B) {
  return add(A, neg(B));
}

/// A * B: all four endpoint products, upward for the hi and (via the
/// negate trick) downward for the lo, then horizontal max.
inline PackedInterval mul(const PackedInterval &A, const PackedInterval &B) {
  SAFEGEN_ASSERT_ROUND_UP();
  if (!A.isFinite() || !B.isFinite())
    return PackedInterval(ia::mul(A.toInterval(), B.toInterval()));
  double La = A.lo(), Ha = A.hi(), Lb = B.lo(), Hb = B.hi();
  __m256d PA = _mm256_set_pd(Ha, Ha, La, La);
  __m256d PB = _mm256_set_pd(Hb, Lb, Hb, Lb);
  // Upward candidates for the high endpoint.
  __m256d Up = _mm256_mul_pd(PA, PB);
  // Downward candidates via RD(x*y) = -RU((-x)*y); then the low endpoint
  // is min(RD(...)) = -max(-RD(...)) — keep everything as maxima of the
  // negated products.
  const __m256d SignMask = _mm256_set1_pd(-0.0);
  __m256d Dn = _mm256_mul_pd(_mm256_xor_pd(PA, SignMask), PB);
  // Horizontal maxima.
  __m256d UpMax = _mm256_max_pd(Up, _mm256_permute2f128_pd(Up, Up, 1));
  UpMax = _mm256_max_pd(UpMax, _mm256_permute_pd(UpMax, 0b0101));
  __m256d DnMax = _mm256_max_pd(Dn, _mm256_permute2f128_pd(Dn, Dn, 1));
  DnMax = _mm256_max_pd(DnMax, _mm256_permute_pd(DnMax, 0b0101));
  double Hi = _mm256_cvtsd_f64(UpMax);
  double NegLo = _mm256_cvtsd_f64(DnMax); // = -RD(min product)
  return PackedInterval(_mm_set_pd(Hi, NegLo));
}

/// A / B: scalar semantics (division is rare in the kernels; the packed
/// form mainly accelerates the +,-,* stream).
inline PackedInterval div(const PackedInterval &A, const PackedInterval &B) {
  return PackedInterval(ia::div(A.toInterval(), B.toInterval()));
}

inline PackedInterval sqrt(const PackedInterval &A) {
  return PackedInterval(ia::sqrt(A.toInterval()));
}

inline PackedInterval operator+(const PackedInterval &A,
                                const PackedInterval &B) {
  return add(A, B);
}
inline PackedInterval operator-(const PackedInterval &A,
                                const PackedInterval &B) {
  return sub(A, B);
}
inline PackedInterval operator*(const PackedInterval &A,
                                const PackedInterval &B) {
  return mul(A, B);
}
inline PackedInterval operator/(const PackedInterval &A,
                                const PackedInterval &B) {
  return div(A, B);
}
inline PackedInterval operator-(const PackedInterval &A) { return neg(A); }

#endif // SAFEGEN_HAVE_AVX2

} // namespace ia
} // namespace safegen

#endif // SAFEGEN_IA_PACKEDINTERVAL_H
