//===- ASTPrinter.cpp -----------------------------------------------------===//
//
// Part of the SafeGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "frontend/ASTPrinter.h"

#include <cassert>

using namespace safegen;
using namespace safegen::frontend;

const char *frontend::binaryOpSpelling(BinaryOpKind Op) {
  switch (Op) {
  case BinaryOpKind::Add:
    return "+";
  case BinaryOpKind::Sub:
    return "-";
  case BinaryOpKind::Mul:
    return "*";
  case BinaryOpKind::Div:
    return "/";
  case BinaryOpKind::Rem:
    return "%";
  case BinaryOpKind::Lt:
    return "<";
  case BinaryOpKind::Gt:
    return ">";
  case BinaryOpKind::Le:
    return "<=";
  case BinaryOpKind::Ge:
    return ">=";
  case BinaryOpKind::Eq:
    return "==";
  case BinaryOpKind::Ne:
    return "!=";
  case BinaryOpKind::LAnd:
    return "&&";
  case BinaryOpKind::LOr:
    return "||";
  case BinaryOpKind::BitAnd:
    return "&";
  case BinaryOpKind::BitOr:
    return "|";
  case BinaryOpKind::BitXor:
    return "^";
  case BinaryOpKind::Shl:
    return "<<";
  case BinaryOpKind::Shr:
    return ">>";
  }
  return "?";
}

const char *frontend::assignOpSpelling(AssignOpKind Op) {
  switch (Op) {
  case AssignOpKind::Assign:
    return "=";
  case AssignOpKind::AddAssign:
    return "+=";
  case AssignOpKind::SubAssign:
    return "-=";
  case AssignOpKind::MulAssign:
    return "*=";
  case AssignOpKind::DivAssign:
    return "/=";
  }
  return "?";
}

void ASTPrinter::indent() {
  for (int I = 0; I < IndentLevel; ++I)
    OS << "  ";
}

std::string ASTPrinter::print(const TranslationUnit &TU) {
  OS.str("");
  for (const std::string &Line : TU.PreambleLines)
    OS << Line << '\n';
  if (!TU.PreambleLines.empty())
    OS << '\n';
  for (const Decl *D : TU.Decls) {
    printDecl(D);
    OS << '\n';
  }
  return OS.str();
}

std::string ASTPrinter::print(const FunctionDecl *F) {
  OS.str("");
  printFunction(F);
  return OS.str();
}

std::string ASTPrinter::print(const Stmt *S) {
  OS.str("");
  printStmt(S);
  return OS.str();
}

std::string ASTPrinter::print(const Expr *E) {
  OS.str("");
  printExpr(E);
  return OS.str();
}

void ASTPrinter::printDecl(const Decl *D) {
  if (D->getKind() == Decl::Kind::Function) {
    printFunction(static_cast<const FunctionDecl *>(D));
    return;
  }
  printVarDecl(static_cast<const VarDecl *>(D));
  OS << ";\n";
}

void ASTPrinter::printVarDecl(const VarDecl *D) {
  OS << D->getType()->printDeclaration(D->getName());
  if (D->getInit()) {
    OS << " = ";
    printExpr(D->getInit());
  }
}

void ASTPrinter::printFunction(const FunctionDecl *F) {
  OS << F->getReturnType()->str() << ' ' << F->getName() << '(';
  bool First = true;
  for (const VarDecl *P : F->getParams()) {
    if (!First)
      OS << ", ";
    First = false;
    if (P->getType()->isArray())
      OS << P->getType()->printDeclaration(P->getName());
    else
      OS << P->getType()->printDeclaration(P->getName());
  }
  if (F->getParams().empty())
    OS << "void";
  OS << ')';
  if (!F->isDefinition()) {
    OS << ";\n";
    return;
  }
  OS << ' ';
  printStmt(F->getBody());
}

void ASTPrinter::printStmt(const Stmt *S) {
  if (!S)
    return;
  switch (S->getKind()) {
  case Stmt::Kind::Compound: {
    OS << "{\n";
    ++IndentLevel;
    for (const Stmt *Child : static_cast<const CompoundStmt *>(S)->getBody()) {
      indent();
      printStmt(Child);
    }
    --IndentLevel;
    indent();
    OS << "}\n";
    return;
  }
  case Stmt::Kind::Decl: {
    const auto *DS = static_cast<const DeclStmt *>(S);
    bool First = true;
    for (const VarDecl *D : DS->getDecls()) {
      if (!First) {
        OS << ";\n";
        indent();
      }
      First = false;
      printVarDecl(D);
    }
    OS << ";\n";
    return;
  }
  case Stmt::Kind::Expr:
    printExpr(static_cast<const ExprStmt *>(S)->getExpr());
    OS << ";\n";
    return;
  case Stmt::Kind::If: {
    const auto *If = static_cast<const IfStmt *>(S);
    OS << "if (";
    printExpr(If->getCond());
    OS << ") ";
    if (If->getThen()->getKind() != Stmt::Kind::Compound) {
      OS << "{\n";
      ++IndentLevel;
      indent();
      printStmt(If->getThen());
      --IndentLevel;
      indent();
      OS << "}";
    } else {
      printStmt(If->getThen());
      // Trim the newline the compound printed so `else` can follow.
      std::string Cur = OS.str();
      if (!Cur.empty() && Cur.back() == '\n') {
        Cur.pop_back();
        OS.str(Cur);
        OS.seekp(0, std::ios_base::end);
      }
    }
    if (If->getElse()) {
      OS << " else ";
      if (If->getElse()->getKind() != Stmt::Kind::Compound) {
        OS << "{\n";
        ++IndentLevel;
        indent();
        printStmt(If->getElse());
        --IndentLevel;
        indent();
        OS << "}\n";
      } else {
        printStmt(If->getElse());
      }
    } else {
      OS << "\n";
    }
    return;
  }
  case Stmt::Kind::For: {
    const auto *For = static_cast<const ForStmt *>(S);
    OS << "for (";
    if (For->getInit()) {
      // Print the init inline without its trailing newline.
      std::string Saved = OS.str();
      ASTPrinter Inner;
      std::string InitStr = Inner.print(For->getInit());
      while (!InitStr.empty() &&
             (InitStr.back() == '\n' || InitStr.back() == ' '))
        InitStr.pop_back();
      OS << InitStr;
      (void)Saved;
    } else {
      OS << ';';
    }
    OS << ' ';
    if (For->getCond())
      printExpr(For->getCond());
    OS << "; ";
    if (For->getInc())
      printExpr(For->getInc());
    OS << ") ";
    if (For->getBody() && For->getBody()->getKind() != Stmt::Kind::Compound) {
      OS << "{\n";
      ++IndentLevel;
      indent();
      printStmt(For->getBody());
      --IndentLevel;
      indent();
      OS << "}\n";
    } else {
      printStmt(For->getBody());
    }
    return;
  }
  case Stmt::Kind::While: {
    const auto *W = static_cast<const WhileStmt *>(S);
    OS << "while (";
    printExpr(W->getCond());
    OS << ") ";
    printStmt(W->getBody());
    if (W->getBody()->getKind() != Stmt::Kind::Compound)
      OS << '\n';
    return;
  }
  case Stmt::Kind::DoWhile: {
    const auto *D = static_cast<const DoWhileStmt *>(S);
    OS << "do ";
    printStmt(D->getBody());
    indent();
    OS << "while (";
    printExpr(D->getCond());
    OS << ");\n";
    return;
  }
  case Stmt::Kind::Return: {
    const auto *R = static_cast<const ReturnStmt *>(S);
    OS << "return";
    if (R->getValue()) {
      OS << ' ';
      printExpr(R->getValue());
    }
    OS << ";\n";
    return;
  }
  case Stmt::Kind::Break:
    OS << "break;\n";
    return;
  case Stmt::Kind::Continue:
    OS << "continue;\n";
    return;
  case Stmt::Kind::Null:
    OS << ";\n";
    return;
  case Stmt::Kind::Pragma:
    OS << static_cast<const PragmaStmt *>(S)->getText() << '\n';
    return;
  }
}

void ASTPrinter::printExpr(const Expr *E) {
  if (!E) {
    OS << "/*null*/";
    return;
  }
  switch (E->getKind()) {
  case Expr::Kind::IntLiteral:
    OS << static_cast<const IntLiteralExpr *>(E)->getValue();
    return;
  case Expr::Kind::FloatLiteral: {
    const auto *F = static_cast<const FloatLiteralExpr *>(E);
    OS << F->getSpelling();
    return;
  }
  case Expr::Kind::DeclRef:
    OS << static_cast<const DeclRefExpr *>(E)->getName();
    return;
  case Expr::Kind::Paren: {
    OS << '(';
    printExpr(static_cast<const ParenExpr *>(E)->getInner());
    OS << ')';
    return;
  }
  case Expr::Kind::Unary: {
    const auto *U = static_cast<const UnaryExpr *>(E);
    switch (U->getOp()) {
    case UnaryOpKind::Plus:
      OS << '+';
      break;
    case UnaryOpKind::Minus:
      OS << '-';
      break;
    case UnaryOpKind::Not:
      OS << '!';
      break;
    case UnaryOpKind::BitNot:
      OS << '~';
      break;
    case UnaryOpKind::PreInc:
      OS << "++";
      break;
    case UnaryOpKind::PreDec:
      OS << "--";
      break;
    case UnaryOpKind::AddrOf:
      OS << '&';
      break;
    case UnaryOpKind::Deref:
      OS << '*';
      break;
    case UnaryOpKind::PostInc:
    case UnaryOpKind::PostDec:
      break;
    }
    // Parenthesize compound operands for safety.
    bool NeedParens = U->getOperand()->getKind() == Expr::Kind::Binary ||
                      U->getOperand()->getKind() == Expr::Kind::Assign ||
                      U->getOperand()->getKind() == Expr::Kind::Conditional;
    if (NeedParens)
      OS << '(';
    printExpr(U->getOperand());
    if (NeedParens)
      OS << ')';
    if (U->getOp() == UnaryOpKind::PostInc)
      OS << "++";
    if (U->getOp() == UnaryOpKind::PostDec)
      OS << "--";
    return;
  }
  case Expr::Kind::Binary: {
    const auto *B = static_cast<const BinaryExpr *>(E);
    // Emit fully parenthesized: simple and always correct.
    bool LP = B->getLhs()->getKind() == Expr::Kind::Binary ||
              B->getLhs()->getKind() == Expr::Kind::Conditional ||
              B->getLhs()->getKind() == Expr::Kind::Assign;
    bool RP = B->getRhs()->getKind() == Expr::Kind::Binary ||
              B->getRhs()->getKind() == Expr::Kind::Conditional ||
              B->getRhs()->getKind() == Expr::Kind::Assign;
    if (LP)
      OS << '(';
    printExpr(B->getLhs());
    if (LP)
      OS << ')';
    OS << ' ' << binaryOpSpelling(B->getOp()) << ' ';
    if (RP)
      OS << '(';
    printExpr(B->getRhs());
    if (RP)
      OS << ')';
    return;
  }
  case Expr::Kind::Assign: {
    const auto *A = static_cast<const AssignExpr *>(E);
    printExpr(A->getLhs());
    OS << ' ' << assignOpSpelling(A->getOp()) << ' ';
    printExpr(A->getRhs());
    return;
  }
  case Expr::Kind::Subscript: {
    const auto *S = static_cast<const SubscriptExpr *>(E);
    printExpr(S->getBase());
    OS << '[';
    printExpr(S->getIndex());
    OS << ']';
    return;
  }
  case Expr::Kind::Call: {
    const auto *C = static_cast<const CallExpr *>(E);
    OS << C->getCallee() << '(';
    bool First = true;
    for (const Expr *Arg : C->getArgs()) {
      if (!First)
        OS << ", ";
      First = false;
      printExpr(Arg);
    }
    OS << ')';
    return;
  }
  case Expr::Kind::Cast: {
    const auto *C = static_cast<const CastExpr *>(E);
    if (C->isImplicit()) {
      printExpr(C->getOperand());
      return;
    }
    OS << '(' << C->getType()->str() << ')';
    bool NeedParens = C->getOperand()->getKind() == Expr::Kind::Binary ||
                      C->getOperand()->getKind() == Expr::Kind::Conditional;
    if (NeedParens)
      OS << '(';
    printExpr(C->getOperand());
    if (NeedParens)
      OS << ')';
    return;
  }
  case Expr::Kind::Conditional: {
    const auto *C = static_cast<const ConditionalExpr *>(E);
    printExpr(C->getCond());
    OS << " ? ";
    printExpr(C->getTrueExpr());
    OS << " : ";
    printExpr(C->getFalseExpr());
    return;
  }
  }
}
