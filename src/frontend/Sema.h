//===- Sema.h - Semantic analysis for the C subset --------------*- C++ -*-===//
//
// Part of the SafeGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Type checking for the parsed AST: computes the type of every
/// expression, applies the usual arithmetic conversions by inserting
/// implicit CastExprs, validates lvalues/subscripts, and knows the
/// signatures of the libm functions and SIMD intrinsics that SafeGen
/// rewrites (Sec. IV-B). After a successful run every Expr has a non-null
/// type, which the rewriter relies on to decide what is a floating-point
/// computation.
///
//===----------------------------------------------------------------------===//

#ifndef SAFEGEN_FRONTEND_SEMA_H
#define SAFEGEN_FRONTEND_SEMA_H

#include "frontend/AST.h"
#include "support/Diagnostics.h"

namespace safegen {
namespace frontend {

class Sema {
public:
  Sema(ASTContext &Ctx, DiagnosticsEngine &Diags) : Ctx(Ctx), Diags(Diags) {}

  /// Checks the whole translation unit. Returns false if errors were
  /// diagnosed.
  bool check();

  /// Returns the result type of a known builtin/libm/intrinsic call, or
  /// null if the callee is unknown. Exposed for the rewriter.
  const Type *builtinCallType(const std::string &Callee,
                              const std::vector<Expr *> &Args);

private:
  void checkFunction(FunctionDecl *F);
  void checkStmt(Stmt *S);
  const Type *checkExpr(Expr *E);
  /// Inserts an implicit cast of E to T if types differ (returns the
  /// replacement expression).
  Expr *convert(Expr *E, const Type *T);
  const Type *commonArithmetic(const Type *A, const Type *B);
  bool isLvalue(const Expr *E) const;

  ASTContext &Ctx;
  DiagnosticsEngine &Diags;
  const Type *CurrentReturnType = nullptr;
};

} // namespace frontend
} // namespace safegen

#endif // SAFEGEN_FRONTEND_SEMA_H
