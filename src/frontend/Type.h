//===- Type.h - Types of the C subset ---------------------------*- C++ -*-===//
//
// Part of the SafeGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The type system of SafeGen's C-subset frontend. It covers what the
/// paper's benchmarks and transformations need: the scalar builtins,
/// pointers, fixed-size arrays, and the AVX vector builtins (`__m128d`,
/// `__m256d`, ...) that the SIMD-input path recognizes (Sec. IV-B).
/// Types are interned in the TypeContext so equality is pointer equality.
///
//===----------------------------------------------------------------------===//

#ifndef SAFEGEN_FRONTEND_TYPE_H
#define SAFEGEN_FRONTEND_TYPE_H

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace safegen {
namespace frontend {

class TypeContext;

/// A (possibly derived) type. Instances are owned and uniqued by the
/// TypeContext; compare with ==.
class Type {
public:
  enum class Kind {
    Void,
    Bool,
    Int,      ///< any signed integer rank (we do not model rank precisely)
    UInt,     ///< unsigned integer
    Long,     ///< long / size-like integers
    Half,     ///< _Float16 (software binary16 in the sound runtime)
    BFloat16, ///< __bf16 (software bfloat16 in the sound runtime)
    Float,
    Double,
    Affine,   ///< an affine type produced by the rewriter (f64a/dda/...)
    Vector,   ///< SIMD vector: N x element
    Pointer,
    Array,
  };

  Kind getKind() const { return K; }

  bool isVoid() const { return K == Kind::Void; }
  bool isInteger() const {
    return K == Kind::Bool || K == Kind::Int || K == Kind::UInt ||
           K == Kind::Long;
  }
  bool isFloating() const {
    return K == Kind::Half || K == Kind::BFloat16 || K == Kind::Float ||
           K == Kind::Double;
  }
  bool isAffine() const { return K == Kind::Affine; }
  bool isArithmetic() const {
    return isInteger() || isFloating() || isAffine();
  }
  bool isPointer() const { return K == Kind::Pointer; }
  bool isArray() const { return K == Kind::Array; }
  bool isVector() const { return K == Kind::Vector; }

  /// Element type for pointers, arrays and vectors; null otherwise.
  const Type *getElement() const { return Element; }
  /// Array extent (0 for unsized `[]`), or vector lane count.
  uint64_t getArraySize() const { return Size; }
  unsigned getVectorLanes() const { return static_cast<unsigned>(Size); }

  /// The name of an affine type ("f64a", "dda", "f32a"), set by the
  /// rewriter.
  const std::string &getAffineName() const { return AffineName; }

  /// Renders the type as C source, e.g. "double", "double *",
  /// "__m256d". For array declarators use printDeclaration().
  std::string str() const;

  /// Renders "T name" including array suffixes: "double a[10][10]".
  std::string printDeclaration(const std::string &Name) const;

private:
  friend class TypeContext;
  Type(Kind K) : K(K) {}

  Kind K;
  const Type *Element = nullptr;
  uint64_t Size = 0;
  std::string AffineName;
};

/// Owns and uniques all Type instances of one compilation.
class TypeContext {
public:
  TypeContext();

  const Type *getVoid() const { return VoidTy; }
  const Type *getBool() const { return BoolTy; }
  const Type *getInt() const { return IntTy; }
  const Type *getUInt() const { return UIntTy; }
  const Type *getLong() const { return LongTy; }
  const Type *getHalf() const { return HalfTy; }
  const Type *getBFloat16() const { return BF16Ty; }
  const Type *getFloat() const { return FloatTy; }
  const Type *getDouble() const { return DoubleTy; }

  const Type *getPointer(const Type *Pointee);
  const Type *getArray(const Type *Element, uint64_t Size);
  /// A SIMD vector type, e.g. getVector(getDouble(), 4) for __m256d.
  const Type *getVector(const Type *Element, unsigned Lanes);
  /// An affine type with the given source-level name (e.g. "f64a").
  const Type *getAffine(const std::string &Name);

  /// Resolves a builtin type name ("double", "__m256d", ...); returns
  /// null if unknown.
  const Type *lookupBuiltin(const std::string &Name) const;

private:
  const Type *make(Type::Kind K);

  std::vector<std::unique_ptr<Type>> Types;
  const Type *VoidTy, *BoolTy, *IntTy, *UIntTy, *LongTy, *HalfTy, *BF16Ty,
      *FloatTy, *DoubleTy;
};

} // namespace frontend
} // namespace safegen

#endif // SAFEGEN_FRONTEND_TYPE_H
