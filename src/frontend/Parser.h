//===- Parser.h - Recursive-descent parser for the C subset -----*- C++ -*-===//
//
// Part of the SafeGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the C subset that SafeGen's benchmarks use: function
/// definitions over scalars, pointers and (multi-dimensional) arrays of
/// the builtin types, full expression grammar with C precedence,
/// if/for/while/do control flow, and preprocessor lines preserved for
/// pass-through. Name binding happens during parsing (scoped symbol
/// table); type checking and implicit casts are Sema's job.
///
//===----------------------------------------------------------------------===//

#ifndef SAFEGEN_FRONTEND_PARSER_H
#define SAFEGEN_FRONTEND_PARSER_H

#include "frontend/AST.h"
#include "frontend/Token.h"
#include "support/Diagnostics.h"

#include <unordered_map>
#include <vector>

namespace safegen {
namespace frontend {

class Parser {
public:
  Parser(std::vector<Token> Tokens, ASTContext &Ctx, DiagnosticsEngine &Diags)
      : Tokens(std::move(Tokens)), Ctx(Ctx), Diags(Diags) {}

  /// Parses the whole token stream into Ctx.tu(). Returns false if any
  /// parse error was diagnosed.
  bool parseTranslationUnit();

private:
  //===--------------------------------------------------------------------===//
  // Token helpers
  //===--------------------------------------------------------------------===//
  const Token &tok(unsigned Ahead = 0) const {
    unsigned I = Index + Ahead;
    return I < Tokens.size() ? Tokens[I] : Tokens.back();
  }
  bool at(TokenKind K) const { return tok().is(K); }
  Token consume() { return Tokens[Index < Tokens.size() - 1 ? Index++ : Index]; }
  bool accept(TokenKind K) {
    if (!at(K))
      return false;
    consume();
    return true;
  }
  bool expect(TokenKind K, const char *Context);
  void error(const std::string &Msg) { Diags.error(tok().Loc, Msg); }
  /// Skips tokens until a likely recovery point (; } or EOF).
  void recover();

  //===--------------------------------------------------------------------===//
  // Scopes
  //===--------------------------------------------------------------------===//
  void pushScope() { Scopes.emplace_back(); }
  void popScope() { Scopes.pop_back(); }
  void declare(VarDecl *D);
  VarDecl *lookup(const std::string &Name) const;

  //===--------------------------------------------------------------------===//
  // Grammar productions
  //===--------------------------------------------------------------------===//
  bool atTypeSpecifier() const;
  const Type *parseTypeSpecifier();
  const Type *parseDeclaratorSuffix(const Type *Base, std::string &Name,
                                    bool AllowUnsized);

  Decl *parseTopLevel();
  FunctionDecl *parseFunctionRest(const Type *RetTy, std::string Name,
                                  SourceLocation Loc);
  Stmt *parseStmt();
  CompoundStmt *parseCompound();
  Stmt *parseDeclStmt();
  Stmt *parseFor();

  Expr *parseExpr(); // comma-free assignment-expression
  Expr *parseAssignment();
  Expr *parseConditional();
  Expr *parseBinary(int MinPrec);
  Expr *parseUnary();
  Expr *parsePostfix();
  Expr *parsePrimary();

  std::vector<Token> Tokens;
  ASTContext &Ctx;
  DiagnosticsEngine &Diags;
  unsigned Index = 0;
  std::vector<std::unordered_map<std::string, VarDecl *>> Scopes;
};

} // namespace frontend
} // namespace safegen

#endif // SAFEGEN_FRONTEND_PARSER_H
