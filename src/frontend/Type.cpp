//===- Type.cpp -----------------------------------------------------------===//
//
// Part of the SafeGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "frontend/Type.h"

#include <sstream>

using namespace safegen;
using namespace safegen::frontend;

std::string Type::str() const {
  switch (K) {
  case Kind::Void:
    return "void";
  case Kind::Bool:
    return "int"; // C89-style: booleans are ints in the output
  case Kind::Int:
    return "int";
  case Kind::UInt:
    return "unsigned int";
  case Kind::Long:
    return "long";
  case Kind::Half:
    return "_Float16";
  case Kind::BFloat16:
    return "__bf16";
  case Kind::Float:
    return "float";
  case Kind::Double:
    return "double";
  case Kind::Affine:
    return AffineName;
  case Kind::Vector: {
    // Render the standard Intel names where they exist.
    if (Element->getKind() == Kind::Double && Size == 2)
      return "__m128d";
    if (Element->getKind() == Kind::Double && Size == 4)
      return "__m256d";
    if (Element->getKind() == Kind::Float && Size == 4)
      return "__m128";
    if (Element->getKind() == Kind::Float && Size == 8)
      return "__m256";
    std::ostringstream OS;
    OS << Element->str() << " __attribute__((vector_size("
       << Size * (Element->getKind() == Kind::Double ? 8 : 4) << ")))";
    return OS.str();
  }
  case Kind::Pointer:
    return Element->str() + " *";
  case Kind::Array:
    return Element->str() + " []"; // bare form; prefer printDeclaration
  }
  return "<?>";
}

std::string Type::printDeclaration(const std::string &Name) const {
  if (K == Kind::Array) {
    std::ostringstream OS;
    // Collect nested array extents.
    const Type *T = this;
    std::vector<uint64_t> Extents;
    while (T->getKind() == Kind::Array) {
      Extents.push_back(T->getArraySize());
      T = T->getElement();
    }
    OS << T->str() << ' ' << Name;
    for (uint64_t E : Extents) {
      if (E == 0)
        OS << "[]";
      else
        OS << '[' << E << ']';
    }
    return OS.str();
  }
  if (K == Kind::Pointer)
    return Element->str() + " *" + Name;
  return str() + ' ' + Name;
}

TypeContext::TypeContext() {
  VoidTy = make(Type::Kind::Void);
  BoolTy = make(Type::Kind::Bool);
  IntTy = make(Type::Kind::Int);
  UIntTy = make(Type::Kind::UInt);
  LongTy = make(Type::Kind::Long);
  HalfTy = make(Type::Kind::Half);
  BF16Ty = make(Type::Kind::BFloat16);
  FloatTy = make(Type::Kind::Float);
  DoubleTy = make(Type::Kind::Double);
}

const Type *TypeContext::make(Type::Kind K) {
  Types.push_back(std::unique_ptr<Type>(new Type(K)));
  return Types.back().get();
}

const Type *TypeContext::getPointer(const Type *Pointee) {
  for (const auto &T : Types)
    if (T->getKind() == Type::Kind::Pointer && T->getElement() == Pointee)
      return T.get();
  Type *T = new Type(Type::Kind::Pointer);
  T->Element = Pointee;
  Types.push_back(std::unique_ptr<Type>(T));
  return T;
}

const Type *TypeContext::getArray(const Type *Element, uint64_t Size) {
  for (const auto &T : Types)
    if (T->getKind() == Type::Kind::Array && T->getElement() == Element &&
        T->getArraySize() == Size)
      return T.get();
  Type *T = new Type(Type::Kind::Array);
  T->Element = Element;
  T->Size = Size;
  Types.push_back(std::unique_ptr<Type>(T));
  return T;
}

const Type *TypeContext::getVector(const Type *Element, unsigned Lanes) {
  for (const auto &T : Types)
    if (T->getKind() == Type::Kind::Vector && T->getElement() == Element &&
        T->getArraySize() == Lanes)
      return T.get();
  Type *T = new Type(Type::Kind::Vector);
  T->Element = Element;
  T->Size = Lanes;
  Types.push_back(std::unique_ptr<Type>(T));
  return T;
}

const Type *TypeContext::getAffine(const std::string &Name) {
  for (const auto &T : Types)
    if (T->getKind() == Type::Kind::Affine && T->getAffineName() == Name)
      return T.get();
  Type *T = new Type(Type::Kind::Affine);
  T->AffineName = Name;
  Types.push_back(std::unique_ptr<Type>(T));
  return T;
}

const Type *TypeContext::lookupBuiltin(const std::string &Name) const {
  if (Name == "void")
    return VoidTy;
  if (Name == "int")
    return IntTy;
  if (Name == "unsigned")
    return UIntTy;
  if (Name == "long")
    return LongTy;
  if (Name == "_Float16")
    return HalfTy;
  if (Name == "__bf16")
    return BF16Ty;
  if (Name == "float")
    return FloatTy;
  if (Name == "double")
    return DoubleTy;
  if (Name == "__m128d")
    return const_cast<TypeContext *>(this)
        ->getVector(DoubleTy, 2);
  if (Name == "__m256d")
    return const_cast<TypeContext *>(this)
        ->getVector(DoubleTy, 4);
  if (Name == "__m128")
    return const_cast<TypeContext *>(this)
        ->getVector(FloatTy, 4);
  if (Name == "__m256")
    return const_cast<TypeContext *>(this)
        ->getVector(FloatTy, 8);
  return nullptr;
}
