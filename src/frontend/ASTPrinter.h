//===- ASTPrinter.h - Print the AST back as C source ------------*- C++ -*-===//
//
// Part of the SafeGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pretty-prints an AST (possibly transformed by the rewriter) back to
/// compilable C. The rewriter produces its output through this printer,
/// so the printer understands the affine types and runtime-call shapes it
/// generates — but it has no SafeGen-specific logic itself.
///
//===----------------------------------------------------------------------===//

#ifndef SAFEGEN_FRONTEND_ASTPRINTER_H
#define SAFEGEN_FRONTEND_ASTPRINTER_H

#include "frontend/AST.h"

#include <sstream>
#include <string>

namespace safegen {
namespace frontend {

class ASTPrinter {
public:
  /// Renders a whole translation unit (preamble lines first).
  std::string print(const TranslationUnit &TU);
  std::string print(const FunctionDecl *F);
  std::string print(const Stmt *S);
  std::string print(const Expr *E);

private:
  void printDecl(const Decl *D);
  void printFunction(const FunctionDecl *F);
  void printStmt(const Stmt *S);
  void printExpr(const Expr *E);
  void printVarDecl(const VarDecl *D);
  void indent();

  std::ostringstream OS;
  int IndentLevel = 0;
};

/// C spelling of a binary operator.
const char *binaryOpSpelling(BinaryOpKind Op);
/// C spelling of an assignment operator.
const char *assignOpSpelling(AssignOpKind Op);

} // namespace frontend
} // namespace safegen

#endif // SAFEGEN_FRONTEND_ASTPRINTER_H
