//===- Lexer.cpp ----------------------------------------------------------===//
//
// Part of the SafeGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "frontend/Lexer.h"

#include <cctype>
#include <cstdlib>
#include <unordered_map>

using namespace safegen;
using namespace safegen::frontend;

const char *frontend::tokenKindName(TokenKind K) {
  switch (K) {
  case TokenKind::Eof:
    return "end of file";
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::IntLiteral:
    return "integer literal";
  case TokenKind::FloatLiteral:
    return "floating literal";
  case TokenKind::StringLiteral:
    return "string literal";
  case TokenKind::PragmaLine:
    return "#pragma";
  case TokenKind::PreprocessorLine:
    return "preprocessor line";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::LBracket:
    return "'['";
  case TokenKind::RBracket:
    return "']'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Semicolon:
    return "';'";
  default:
    return "token";
  }
}

static const std::unordered_map<std::string_view, TokenKind> &keywords() {
  static const std::unordered_map<std::string_view, TokenKind> Map = {
      {"void", TokenKind::KwVoid},         {"int", TokenKind::KwInt},
      {"long", TokenKind::KwLong},         {"unsigned", TokenKind::KwUnsigned},
      {"float", TokenKind::KwFloat},       {"double", TokenKind::KwDouble},
      {"const", TokenKind::KwConst},       {"static", TokenKind::KwStatic},
      {"if", TokenKind::KwIf},             {"else", TokenKind::KwElse},
      {"for", TokenKind::KwFor},           {"while", TokenKind::KwWhile},
      {"do", TokenKind::KwDo},             {"return", TokenKind::KwReturn},
      {"break", TokenKind::KwBreak},       {"continue", TokenKind::KwContinue},
      {"sizeof", TokenKind::KwSizeof},
  };
  return Map;
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Tokens;
  for (;;) {
    Token T = next();
    Tokens.push_back(T);
    if (T.is(TokenKind::Eof))
      break;
  }
  return Tokens;
}

void Lexer::skipWhitespaceAndComments() {
  for (;;) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\n' || C == '\r' || C == '\v' ||
        C == '\f') {
      ++Pos;
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (peek() != '\n' && peek() != '\0')
        ++Pos;
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      uint32_t Start = Pos;
      Pos += 2;
      while (!(peek() == '*' && peek(1) == '/')) {
        if (peek() == '\0') {
          Diags.error(location(Start), "unterminated block comment");
          return;
        }
        ++Pos;
      }
      Pos += 2;
      continue;
    }
    return;
  }
}

Token Lexer::makeToken(TokenKind Kind, uint32_t Begin) {
  Token T;
  T.Kind = Kind;
  T.Text = Buffer.substr(Begin, Pos - Begin);
  T.Loc = location(Begin);
  return T;
}

Token Lexer::lexIdentifierOrKeyword() {
  uint32_t Begin = Pos;
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
    ++Pos;
  Token T = makeToken(TokenKind::Identifier, Begin);
  auto It = keywords().find(T.Text);
  if (It != keywords().end())
    T.Kind = It->second;
  return T;
}

Token Lexer::lexNumber() {
  uint32_t Begin = Pos;
  bool IsFloat = false;
  // Hex literals.
  if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
    Pos += 2;
    while (std::isxdigit(static_cast<unsigned char>(peek())) ||
           peek() == '.' || peek() == 'p' || peek() == 'P' ||
           ((peek() == '+' || peek() == '-') &&
            (Buffer[Pos - 1] == 'p' || Buffer[Pos - 1] == 'P'))) {
      if (peek() == '.' || peek() == 'p' || peek() == 'P')
        IsFloat = true;
      ++Pos;
    }
  } else {
    while (std::isdigit(static_cast<unsigned char>(peek())))
      ++Pos;
    if (peek() == '.') {
      IsFloat = true;
      ++Pos;
      while (std::isdigit(static_cast<unsigned char>(peek())))
        ++Pos;
    }
    if (peek() == 'e' || peek() == 'E') {
      IsFloat = true;
      ++Pos;
      if (peek() == '+' || peek() == '-')
        ++Pos;
      while (std::isdigit(static_cast<unsigned char>(peek())))
        ++Pos;
    }
  }
  // Suffixes.
  while (peek() == 'f' || peek() == 'F' || peek() == 'l' || peek() == 'L' ||
         peek() == 'u' || peek() == 'U') {
    if (peek() == 'f' || peek() == 'F')
      IsFloat = true;
    ++Pos;
  }
  Token T = makeToken(IsFloat ? TokenKind::FloatLiteral
                              : TokenKind::IntLiteral,
                      Begin);
  std::string Text(T.Text);
  if (IsFloat)
    T.FloatValue = std::strtod(Text.c_str(), nullptr);
  else {
    T.IntValue = std::strtoll(Text.c_str(), nullptr, 0);
    T.FloatValue = static_cast<double>(T.IntValue);
  }
  return T;
}

Token Lexer::lexString() {
  uint32_t Begin = Pos;
  ++Pos; // opening quote
  while (peek() != '"' && peek() != '\0') {
    if (peek() == '\\')
      ++Pos;
    ++Pos;
  }
  if (peek() == '\0')
    Diags.error(location(Begin), "unterminated string literal");
  else
    ++Pos; // closing quote
  return makeToken(TokenKind::StringLiteral, Begin);
}

Token Lexer::lexPreprocessorLine() {
  uint32_t Begin = Pos;
  while (peek() != '\n' && peek() != '\0') {
    // Line continuations.
    if (peek() == '\\' && peek(1) == '\n')
      ++Pos;
    ++Pos;
  }
  Token T = makeToken(TokenKind::PreprocessorLine, Begin);
  if (T.Text.find("#pragma") == 0 ||
      T.Text.find("# pragma") == 0)
    T.Kind = TokenKind::PragmaLine;
  return T;
}

Token Lexer::next() {
  skipWhitespaceAndComments();
  uint32_t Begin = Pos;
  char C = peek();
  if (C == '\0')
    return makeToken(TokenKind::Eof, Begin);
  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_')
    return lexIdentifierOrKeyword();
  if (std::isdigit(static_cast<unsigned char>(C)) ||
      (C == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))))
    return lexNumber();
  if (C == '"')
    return lexString();
  if (C == '#')
    return lexPreprocessorLine();

  auto Punct = [&](TokenKind K, unsigned Len) {
    Pos += Len;
    return makeToken(K, Begin);
  };
  char C1 = peek(1);
  switch (C) {
  case '(':
    return Punct(TokenKind::LParen, 1);
  case ')':
    return Punct(TokenKind::RParen, 1);
  case '{':
    return Punct(TokenKind::LBrace, 1);
  case '}':
    return Punct(TokenKind::RBrace, 1);
  case '[':
    return Punct(TokenKind::LBracket, 1);
  case ']':
    return Punct(TokenKind::RBracket, 1);
  case ',':
    return Punct(TokenKind::Comma, 1);
  case ';':
    return Punct(TokenKind::Semicolon, 1);
  case '?':
    return Punct(TokenKind::Question, 1);
  case ':':
    return Punct(TokenKind::Colon, 1);
  case '.':
    return Punct(TokenKind::Dot, 1);
  case '~':
    return Punct(TokenKind::Tilde, 1);
  case '^':
    return Punct(TokenKind::Caret, 1);
  case '+':
    if (C1 == '+')
      return Punct(TokenKind::PlusPlus, 2);
    if (C1 == '=')
      return Punct(TokenKind::PlusEqual, 2);
    return Punct(TokenKind::Plus, 1);
  case '-':
    if (C1 == '-')
      return Punct(TokenKind::MinusMinus, 2);
    if (C1 == '=')
      return Punct(TokenKind::MinusEqual, 2);
    if (C1 == '>')
      return Punct(TokenKind::Arrow, 2);
    return Punct(TokenKind::Minus, 1);
  case '*':
    if (C1 == '=')
      return Punct(TokenKind::StarEqual, 2);
    return Punct(TokenKind::Star, 1);
  case '/':
    if (C1 == '=')
      return Punct(TokenKind::SlashEqual, 2);
    return Punct(TokenKind::Slash, 1);
  case '%':
    return Punct(TokenKind::Percent, 1);
  case '&':
    if (C1 == '&')
      return Punct(TokenKind::AmpAmp, 2);
    return Punct(TokenKind::Amp, 1);
  case '|':
    if (C1 == '|')
      return Punct(TokenKind::PipePipe, 2);
    return Punct(TokenKind::Pipe, 1);
  case '<':
    if (C1 == '=')
      return Punct(TokenKind::LessEqual, 2);
    if (C1 == '<')
      return Punct(TokenKind::LessLess, 2);
    return Punct(TokenKind::Less, 1);
  case '>':
    if (C1 == '=')
      return Punct(TokenKind::GreaterEqual, 2);
    if (C1 == '>')
      return Punct(TokenKind::GreaterGreater, 2);
    return Punct(TokenKind::Greater, 1);
  case '=':
    if (C1 == '=')
      return Punct(TokenKind::EqualEqual, 2);
    return Punct(TokenKind::Equal, 1);
  case '!':
    if (C1 == '=')
      return Punct(TokenKind::BangEqual, 2);
    return Punct(TokenKind::Bang, 1);
  default:
    Diags.error(location(Begin),
                std::string("unexpected character '") + C + "'");
    ++Pos;
    return next();
  }
}
