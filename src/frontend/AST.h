//===- AST.h - Abstract syntax tree of the C subset -------------*- C++ -*-===//
//
// Part of the SafeGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The AST the parser produces and the SafeGen rewriter consumes. Two node
/// families matter for the transformation (paper Sec. IV-B): declarations
/// (retyped to affine types) and expressions (mapped to affine runtime
/// calls); statements provide the control structure, which is preserved.
///
/// Nodes follow the LLVM pattern: a Kind discriminator with classof-style
/// helpers (no RTTI), arena ownership in the ASTContext.
///
//===----------------------------------------------------------------------===//

#ifndef SAFEGEN_FRONTEND_AST_H
#define SAFEGEN_FRONTEND_AST_H

#include "frontend/Type.h"
#include "support/SourceLocation.h"

#include <memory>
#include <string>
#include <vector>

namespace safegen {
namespace frontend {

class ASTContext;
class Decl;
class VarDecl;
class FunctionDecl;

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

class Expr {
public:
  enum class Kind {
    IntLiteral,
    FloatLiteral,
    DeclRef,
    Paren,
    Unary,
    Binary,
    Assign,
    Subscript,
    Call,
    Cast,
    Conditional,
  };

  Kind getKind() const { return K; }
  const Type *getType() const { return Ty; }
  void setType(const Type *T) { Ty = T; }
  SourceLocation getLoc() const { return Loc; }
  void setLoc(SourceLocation L) { Loc = L; }

  virtual ~Expr() = default;

protected:
  Expr(Kind K, const Type *Ty, SourceLocation Loc) : K(K), Ty(Ty), Loc(Loc) {}

private:
  Kind K;
  const Type *Ty;
  SourceLocation Loc;
};

class IntLiteralExpr : public Expr {
public:
  IntLiteralExpr(long long Value, const Type *Ty, SourceLocation Loc)
      : Expr(Kind::IntLiteral, Ty, Loc), Value(Value) {}
  static bool classof(const Expr *E) { return E->getKind() == Kind::IntLiteral; }
  long long getValue() const { return Value; }

private:
  long long Value;
};

class FloatLiteralExpr : public Expr {
public:
  FloatLiteralExpr(double Value, std::string Spelling, const Type *Ty,
                   SourceLocation Loc)
      : Expr(Kind::FloatLiteral, Ty, Loc), Value(Value),
        Spelling(std::move(Spelling)) {}
  static bool classof(const Expr *E) {
    return E->getKind() == Kind::FloatLiteral;
  }
  double getValue() const { return Value; }
  /// Original source spelling (preserved in output, e.g. "0.1").
  const std::string &getSpelling() const { return Spelling; }

private:
  double Value;
  std::string Spelling;
};

class DeclRefExpr : public Expr {
public:
  DeclRefExpr(VarDecl *D, const Type *Ty, SourceLocation Loc,
              std::string Name)
      : Expr(Kind::DeclRef, Ty, Loc), D(D), Name(std::move(Name)) {}
  static bool classof(const Expr *E) { return E->getKind() == Kind::DeclRef; }
  VarDecl *getDecl() const { return D; }
  const std::string &getName() const { return Name; }

private:
  VarDecl *D; ///< may be null for calls to extern functions
  std::string Name;
};

class ParenExpr : public Expr {
public:
  ParenExpr(Expr *Inner, SourceLocation Loc)
      : Expr(Kind::Paren, Inner->getType(), Loc), Inner(Inner) {}
  static bool classof(const Expr *E) { return E->getKind() == Kind::Paren; }
  Expr *getInner() const { return Inner; }

private:
  Expr *Inner;
};

enum class UnaryOpKind { Plus, Minus, Not, BitNot, PreInc, PreDec, PostInc,
                         PostDec, AddrOf, Deref };

class UnaryExpr : public Expr {
public:
  UnaryExpr(UnaryOpKind Op, Expr *Operand, const Type *Ty, SourceLocation Loc)
      : Expr(Kind::Unary, Ty, Loc), Op(Op), Operand(Operand) {}
  static bool classof(const Expr *E) { return E->getKind() == Kind::Unary; }
  UnaryOpKind getOp() const { return Op; }
  Expr *getOperand() const { return Operand; }

private:
  UnaryOpKind Op;
  Expr *Operand;
};

enum class BinaryOpKind {
  Add, Sub, Mul, Div, Rem,
  Lt, Gt, Le, Ge, Eq, Ne,
  LAnd, LOr,
  BitAnd, BitOr, BitXor, Shl, Shr,
};

class BinaryExpr : public Expr {
public:
  BinaryExpr(BinaryOpKind Op, Expr *Lhs, Expr *Rhs, const Type *Ty,
             SourceLocation Loc)
      : Expr(Kind::Binary, Ty, Loc), Op(Op), Lhs(Lhs), Rhs(Rhs) {}
  static bool classof(const Expr *E) { return E->getKind() == Kind::Binary; }
  BinaryOpKind getOp() const { return Op; }
  Expr *getLhs() const { return Lhs; }
  Expr *getRhs() const { return Rhs; }
  /// Used by Sema to splice in implicit casts.
  void setLhs(Expr *E) { Lhs = E; }
  void setRhs(Expr *E) { Rhs = E; }
  bool isComparison() const {
    return Op == BinaryOpKind::Lt || Op == BinaryOpKind::Gt ||
           Op == BinaryOpKind::Le || Op == BinaryOpKind::Ge ||
           Op == BinaryOpKind::Eq || Op == BinaryOpKind::Ne;
  }
  bool isArithmetic() const {
    return Op == BinaryOpKind::Add || Op == BinaryOpKind::Sub ||
           Op == BinaryOpKind::Mul || Op == BinaryOpKind::Div;
  }

private:
  BinaryOpKind Op;
  Expr *Lhs;
  Expr *Rhs;
};

enum class AssignOpKind { Assign, AddAssign, SubAssign, MulAssign, DivAssign };

class AssignExpr : public Expr {
public:
  AssignExpr(AssignOpKind Op, Expr *Lhs, Expr *Rhs, const Type *Ty,
             SourceLocation Loc)
      : Expr(Kind::Assign, Ty, Loc), Op(Op), Lhs(Lhs), Rhs(Rhs) {}
  static bool classof(const Expr *E) { return E->getKind() == Kind::Assign; }
  AssignOpKind getOp() const { return Op; }
  Expr *getLhs() const { return Lhs; }
  Expr *getRhs() const { return Rhs; }
  /// Used by Sema to splice in implicit casts.
  void setRhs(Expr *E) { Rhs = E; }

private:
  AssignOpKind Op;
  Expr *Lhs;
  Expr *Rhs;
};

class SubscriptExpr : public Expr {
public:
  SubscriptExpr(Expr *Base, Expr *Index, const Type *Ty, SourceLocation Loc)
      : Expr(Kind::Subscript, Ty, Loc), Base(Base), Index(Index) {}
  static bool classof(const Expr *E) { return E->getKind() == Kind::Subscript; }
  Expr *getBase() const { return Base; }
  Expr *getIndex() const { return Index; }

private:
  Expr *Base;
  Expr *Index;
};

class CallExpr : public Expr {
public:
  CallExpr(std::string Callee, std::vector<Expr *> Args, const Type *Ty,
           SourceLocation Loc)
      : Expr(Kind::Call, Ty, Loc), Callee(std::move(Callee)),
        Args(std::move(Args)) {}
  static bool classof(const Expr *E) { return E->getKind() == Kind::Call; }
  const std::string &getCallee() const { return Callee; }
  const std::vector<Expr *> &getArgs() const { return Args; }

private:
  std::string Callee;
  std::vector<Expr *> Args;
};

class CastExpr : public Expr {
public:
  CastExpr(Expr *Operand, const Type *Ty, bool Implicit, SourceLocation Loc)
      : Expr(Kind::Cast, Ty, Loc), Operand(Operand), Implicit(Implicit) {}
  static bool classof(const Expr *E) { return E->getKind() == Kind::Cast; }
  Expr *getOperand() const { return Operand; }
  bool isImplicit() const { return Implicit; }

private:
  Expr *Operand;
  bool Implicit;
};

class ConditionalExpr : public Expr {
public:
  ConditionalExpr(Expr *Cond, Expr *TrueExpr, Expr *FalseExpr, const Type *Ty,
                  SourceLocation Loc)
      : Expr(Kind::Conditional, Ty, Loc), Cond(Cond), TrueExpr(TrueExpr),
        FalseExpr(FalseExpr) {}
  static bool classof(const Expr *E) {
    return E->getKind() == Kind::Conditional;
  }
  Expr *getCond() const { return Cond; }
  Expr *getTrueExpr() const { return TrueExpr; }
  Expr *getFalseExpr() const { return FalseExpr; }

private:
  Expr *Cond;
  Expr *TrueExpr;
  Expr *FalseExpr;
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

class Stmt {
public:
  enum class Kind {
    Compound,
    Decl,
    Expr,
    If,
    For,
    While,
    DoWhile,
    Return,
    Break,
    Continue,
    Null,
    Pragma,
  };

  Kind getKind() const { return K; }
  SourceLocation getLoc() const { return Loc; }
  virtual ~Stmt() = default;

protected:
  Stmt(Kind K, SourceLocation Loc) : K(K), Loc(Loc) {}

private:
  Kind K;
  SourceLocation Loc;
};

class CompoundStmt : public Stmt {
public:
  CompoundStmt(std::vector<Stmt *> Body, SourceLocation Loc)
      : Stmt(Kind::Compound, Loc), Body(std::move(Body)) {}
  static bool classof(const Stmt *S) { return S->getKind() == Kind::Compound; }
  const std::vector<Stmt *> &getBody() const { return Body; }
  std::vector<Stmt *> &getBody() { return Body; }

private:
  std::vector<Stmt *> Body;
};

class DeclStmt : public Stmt {
public:
  DeclStmt(std::vector<VarDecl *> Decls, SourceLocation Loc)
      : Stmt(Kind::Decl, Loc), Decls(std::move(Decls)) {}
  static bool classof(const Stmt *S) { return S->getKind() == Kind::Decl; }
  const std::vector<VarDecl *> &getDecls() const { return Decls; }

private:
  std::vector<VarDecl *> Decls;
};

class ExprStmt : public Stmt {
public:
  ExprStmt(Expr *E, SourceLocation Loc) : Stmt(Kind::Expr, Loc), E(E) {}
  static bool classof(const Stmt *S) { return S->getKind() == Kind::Expr; }
  Expr *getExpr() const { return E; }
  void setExpr(Expr *NewE) { E = NewE; }

private:
  Expr *E;
};

class IfStmt : public Stmt {
public:
  IfStmt(Expr *Cond, Stmt *Then, Stmt *Else, SourceLocation Loc)
      : Stmt(Kind::If, Loc), Cond(Cond), Then(Then), Else(Else) {}
  static bool classof(const Stmt *S) { return S->getKind() == Kind::If; }
  Expr *getCond() const { return Cond; }
  Stmt *getThen() const { return Then; }
  Stmt *getElse() const { return Else; }

private:
  Expr *Cond;
  Stmt *Then;
  Stmt *Else;
};

class ForStmt : public Stmt {
public:
  ForStmt(Stmt *Init, Expr *Cond, Expr *Inc, Stmt *Body, SourceLocation Loc)
      : Stmt(Kind::For, Loc), Init(Init), Cond(Cond), Inc(Inc), Body(Body) {}
  static bool classof(const Stmt *S) { return S->getKind() == Kind::For; }
  Stmt *getInit() const { return Init; }
  Expr *getCond() const { return Cond; }
  Expr *getInc() const { return Inc; }
  Stmt *getBody() const { return Body; }

private:
  Stmt *Init; ///< DeclStmt or ExprStmt or null
  Expr *Cond; ///< may be null
  Expr *Inc;  ///< may be null
  Stmt *Body;
};

class WhileStmt : public Stmt {
public:
  WhileStmt(Expr *Cond, Stmt *Body, SourceLocation Loc)
      : Stmt(Kind::While, Loc), Cond(Cond), Body(Body) {}
  static bool classof(const Stmt *S) { return S->getKind() == Kind::While; }
  Expr *getCond() const { return Cond; }
  Stmt *getBody() const { return Body; }

private:
  Expr *Cond;
  Stmt *Body;
};

class DoWhileStmt : public Stmt {
public:
  DoWhileStmt(Stmt *Body, Expr *Cond, SourceLocation Loc)
      : Stmt(Kind::DoWhile, Loc), Body(Body), Cond(Cond) {}
  static bool classof(const Stmt *S) { return S->getKind() == Kind::DoWhile; }
  Stmt *getBody() const { return Body; }
  Expr *getCond() const { return Cond; }

private:
  Stmt *Body;
  Expr *Cond;
};

class ReturnStmt : public Stmt {
public:
  ReturnStmt(Expr *Value, SourceLocation Loc)
      : Stmt(Kind::Return, Loc), Value(Value) {}
  static bool classof(const Stmt *S) { return S->getKind() == Kind::Return; }
  Expr *getValue() const { return Value; } ///< may be null
  void setValue(Expr *NewValue) { Value = NewValue; }

private:
  Expr *Value;
};

class BreakStmt : public Stmt {
public:
  explicit BreakStmt(SourceLocation Loc) : Stmt(Kind::Break, Loc) {}
  static bool classof(const Stmt *S) { return S->getKind() == Kind::Break; }
};

class ContinueStmt : public Stmt {
public:
  explicit ContinueStmt(SourceLocation Loc) : Stmt(Kind::Continue, Loc) {}
  static bool classof(const Stmt *S) { return S->getKind() == Kind::Continue; }
};

class NullStmt : public Stmt {
public:
  explicit NullStmt(SourceLocation Loc) : Stmt(Kind::Null, Loc) {}
  static bool classof(const Stmt *S) { return S->getKind() == Kind::Null; }
};

/// A `#pragma ...` line kept in statement position. SafeGen pragmas
/// (`#pragma safegen prioritize(x)`) drive the symbol prioritization.
class PragmaStmt : public Stmt {
public:
  PragmaStmt(std::string Text, SourceLocation Loc)
      : Stmt(Kind::Pragma, Loc), Text(std::move(Text)) {}
  static bool classof(const Stmt *S) { return S->getKind() == Kind::Pragma; }
  const std::string &getText() const { return Text; }
  /// If this is "#pragma safegen prioritize(<var>)", returns <var>.
  std::string getPrioritizedVar() const;

private:
  std::string Text;
};

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

class Decl {
public:
  enum class Kind { Var, Param, Function };
  Kind getKind() const { return K; }
  SourceLocation getLoc() const { return Loc; }
  const std::string &getName() const { return Name; }
  virtual ~Decl() = default;

protected:
  Decl(Kind K, std::string Name, SourceLocation Loc)
      : K(K), Name(std::move(Name)), Loc(Loc) {}

private:
  Kind K;
  std::string Name;
  SourceLocation Loc;
};

class VarDecl : public Decl {
public:
  VarDecl(std::string Name, const Type *Ty, Expr *Init, SourceLocation Loc,
          bool IsParam = false, bool IsConst = false)
      : Decl(IsParam ? Kind::Param : Kind::Var, std::move(Name), Loc), Ty(Ty),
        Init(Init), Const(IsConst) {}
  static bool classof(const Decl *D) {
    return D->getKind() == Kind::Var || D->getKind() == Kind::Param;
  }
  const Type *getType() const { return Ty; }
  void setType(const Type *T) { Ty = T; }
  Expr *getInit() const { return Init; }
  void setInit(Expr *E) { Init = E; }
  bool isParam() const { return getKind() == Kind::Param; }
  bool isConst() const { return Const; }

private:
  const Type *Ty;
  Expr *Init;
  bool Const;
};

class FunctionDecl : public Decl {
public:
  FunctionDecl(std::string Name, const Type *ReturnTy,
               std::vector<VarDecl *> Params, CompoundStmt *Body,
               SourceLocation Loc)
      : Decl(Kind::Function, std::move(Name), Loc), ReturnTy(ReturnTy),
        Params(std::move(Params)), Body(Body) {}
  static bool classof(const Decl *D) { return D->getKind() == Kind::Function; }
  const Type *getReturnType() const { return ReturnTy; }
  void setReturnType(const Type *T) { ReturnTy = T; }
  const std::vector<VarDecl *> &getParams() const { return Params; }
  CompoundStmt *getBody() const { return Body; }
  bool isDefinition() const { return Body != nullptr; }

private:
  const Type *ReturnTy;
  std::vector<VarDecl *> Params;
  CompoundStmt *Body;
};

/// The whole parsed file: preprocessor preamble lines (passed through to
/// the output) plus top-level declarations.
struct TranslationUnit {
  std::vector<std::string> PreambleLines;
  std::vector<Decl *> Decls;

  FunctionDecl *findFunction(const std::string &Name) const {
    for (Decl *D : Decls)
      if (D->getKind() == Decl::Kind::Function && D->getName() == Name)
        return static_cast<FunctionDecl *>(D);
    return nullptr;
  }
};

/// Arena owning every AST node of one compilation. Nodes are allocated
/// with create<T>() and live until the context is destroyed (type-erased
/// shared_ptr ownership keeps the correct deleter per node type).
class ASTContext {
public:
  template <typename T, typename... Args> T *create(Args &&...As) {
    auto Node = std::make_shared<T>(std::forward<Args>(As)...);
    T *Ptr = Node.get();
    Nodes.push_back(std::move(Node));
    return Ptr;
  }

  TypeContext &types() { return Types; }
  TranslationUnit &tu() { return TU; }

private:
  std::vector<std::shared_ptr<void>> Nodes;
  TypeContext Types;
  TranslationUnit TU;
};

} // namespace frontend
} // namespace safegen

#endif // SAFEGEN_FRONTEND_AST_H
