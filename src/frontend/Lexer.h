//===- Lexer.h - C-subset lexer ---------------------------------*- C++ -*-===//
//
// Part of the SafeGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written lexer for the C subset. Comments are skipped; preprocessor
/// lines are preserved as single tokens so the rewriter can pass them
/// through (includes) or interpret them (SafeGen pragmas).
///
//===----------------------------------------------------------------------===//

#ifndef SAFEGEN_FRONTEND_LEXER_H
#define SAFEGEN_FRONTEND_LEXER_H

#include "frontend/Token.h"
#include "support/Diagnostics.h"
#include "support/SourceManager.h"

#include <vector>

namespace safegen {
namespace frontend {

class Lexer {
public:
  Lexer(const SourceManager &SM, DiagnosticsEngine &Diags)
      : SM(SM), Diags(Diags), Buffer(SM.getBuffer()) {}

  /// Lexes the entire buffer. The returned vector always ends with an Eof
  /// token. Errors are reported to the diagnostics engine.
  std::vector<Token> lexAll();

private:
  Token next();
  Token makeToken(TokenKind Kind, uint32_t Begin);
  SourceLocation location(uint32_t Offset) const {
    return SM.locationForOffset(Offset);
  }
  char peek(unsigned Ahead = 0) const {
    return Pos + Ahead < Buffer.size() ? Buffer[Pos + Ahead] : '\0';
  }
  void skipWhitespaceAndComments();
  Token lexIdentifierOrKeyword();
  Token lexNumber();
  Token lexString();
  Token lexPreprocessorLine();

  const SourceManager &SM;
  DiagnosticsEngine &Diags;
  std::string_view Buffer;
  uint32_t Pos = 0;
};

} // namespace frontend
} // namespace safegen

#endif // SAFEGEN_FRONTEND_LEXER_H
