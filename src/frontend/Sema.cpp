//===- Sema.cpp -----------------------------------------------------------===//
//
// Part of the SafeGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "frontend/Sema.h"

#include <cassert>

using namespace safegen;
using namespace safegen::frontend;

bool Sema::check() {
  unsigned Before = Diags.getNumErrors();
  for (Decl *D : Ctx.tu().Decls) {
    if (auto *F = static_cast<FunctionDecl *>(D);
        D->getKind() == Decl::Kind::Function) {
      checkFunction(F);
      continue;
    }
    if (D->getKind() == Decl::Kind::Var) {
      auto *V = static_cast<VarDecl *>(D);
      if (V->getInit()) {
        checkExpr(V->getInit());
        V->setInit(convert(V->getInit(), V->getType()));
      }
    }
  }
  return Diags.getNumErrors() == Before;
}

void Sema::checkFunction(FunctionDecl *F) {
  if (!F->isDefinition())
    return;
  CurrentReturnType = F->getReturnType();
  checkStmt(F->getBody());
}

void Sema::checkStmt(Stmt *S) {
  if (!S)
    return;
  switch (S->getKind()) {
  case Stmt::Kind::Compound:
    for (Stmt *Child : static_cast<CompoundStmt *>(S)->getBody())
      checkStmt(Child);
    return;
  case Stmt::Kind::Decl:
    for (VarDecl *D : static_cast<DeclStmt *>(S)->getDecls())
      if (D->getInit()) {
        checkExpr(D->getInit());
        if (D->getType()->isArithmetic())
          D->setInit(convert(D->getInit(), D->getType()));
      }
    return;
  case Stmt::Kind::Expr:
    checkExpr(static_cast<ExprStmt *>(S)->getExpr());
    return;
  case Stmt::Kind::If: {
    auto *If = static_cast<IfStmt *>(S);
    checkExpr(If->getCond());
    checkStmt(If->getThen());
    checkStmt(If->getElse());
    return;
  }
  case Stmt::Kind::For: {
    auto *For = static_cast<ForStmt *>(S);
    checkStmt(For->getInit());
    if (For->getCond())
      checkExpr(For->getCond());
    if (For->getInc())
      checkExpr(For->getInc());
    checkStmt(For->getBody());
    return;
  }
  case Stmt::Kind::While: {
    auto *W = static_cast<WhileStmt *>(S);
    checkExpr(W->getCond());
    checkStmt(W->getBody());
    return;
  }
  case Stmt::Kind::DoWhile: {
    auto *D = static_cast<DoWhileStmt *>(S);
    checkStmt(D->getBody());
    checkExpr(D->getCond());
    return;
  }
  case Stmt::Kind::Return: {
    auto *R = static_cast<ReturnStmt *>(S);
    if (R->getValue())
      checkExpr(R->getValue());
    return;
  }
  case Stmt::Kind::Break:
  case Stmt::Kind::Continue:
  case Stmt::Kind::Null:
  case Stmt::Kind::Pragma:
    return;
  }
}

const Type *Sema::commonArithmetic(const Type *A, const Type *B) {
  auto Rank = [](const Type *T) {
    switch (T->getKind()) {
    case Type::Kind::Bool:
      return 0;
    case Type::Kind::Int:
      return 1;
    case Type::Kind::UInt:
      return 2;
    case Type::Kind::Long:
      return 3;
    case Type::Kind::Half:
      return 4;
    case Type::Kind::BFloat16:
      return 5;
    case Type::Kind::Float:
      return 6;
    case Type::Kind::Double:
      return 7;
    case Type::Kind::Affine:
      return 8;
    default:
      return -1;
    }
  };
  return Rank(A) >= Rank(B) ? A : B;
}

bool Sema::isLvalue(const Expr *E) const {
  switch (E->getKind()) {
  case Expr::Kind::DeclRef:
  case Expr::Kind::Subscript:
    return true;
  case Expr::Kind::Paren:
    return isLvalue(static_cast<const ParenExpr *>(E)->getInner());
  case Expr::Kind::Unary:
    return static_cast<const UnaryExpr *>(E)->getOp() == UnaryOpKind::Deref;
  default:
    return false;
  }
}

Expr *Sema::convert(Expr *E, const Type *T) {
  if (!E || !T || E->getType() == T)
    return E;
  if (!E->getType() || !E->getType()->isArithmetic() || !T->isArithmetic())
    return E;
  Expr *Cast = Ctx.create<CastExpr>(E, T, /*Implicit=*/true, E->getLoc());
  return Cast;
}

const Type *Sema::builtinCallType(const std::string &Callee,
                                  const std::vector<Expr *> &Args) {
  TypeContext &TC = Ctx.types();
  // libm double -> double.
  static const char *UnaryMath[] = {"sqrt", "fabs", "exp",  "log",  "sin",
                                    "cos",  "tan",  "asin", "acos", "atan",
                                    "floor", "ceil", "trunc", "round"};
  for (const char *Name : UnaryMath)
    if (Callee == Name)
      return TC.getDouble();
  static const char *UnaryMathF[] = {"sqrtf", "fabsf", "expf", "logf"};
  for (const char *Name : UnaryMathF)
    if (Callee == Name)
      return TC.getFloat();
  if (Callee == "pow" || Callee == "fmax" || Callee == "fmin" ||
      Callee == "atan2" || Callee == "fmod" || Callee == "hypot" ||
      Callee == "copysign" || Callee == "fma")
    return TC.getDouble();
  if (Callee == "abs")
    return TC.getInt();

  // AVX/SSE double intrinsics.
  const Type *M256d = TC.getVector(TC.getDouble(), 4);
  const Type *M128d = TC.getVector(TC.getDouble(), 2);
  static const char *M256dOps[] = {
      "_mm256_add_pd",   "_mm256_sub_pd",  "_mm256_mul_pd", "_mm256_div_pd",
      "_mm256_sqrt_pd",  "_mm256_set1_pd", "_mm256_loadu_pd",
      "_mm256_load_pd",  "_mm256_setzero_pd", "_mm256_fmadd_pd",
      "_mm256_fmsub_pd", "_mm256_max_pd",  "_mm256_min_pd",
      "_mm256_set_pd",   "_mm256_broadcast_sd"};
  for (const char *Name : M256dOps)
    if (Callee == Name)
      return M256d;
  static const char *M128dOps[] = {"_mm_add_pd", "_mm_sub_pd", "_mm_mul_pd",
                                   "_mm_div_pd", "_mm_sqrt_pd", "_mm_set1_pd",
                                   "_mm_loadu_pd", "_mm_load_pd",
                                   "_mm_setzero_pd"};
  for (const char *Name : M128dOps)
    if (Callee == Name)
      return M128d;
  if (Callee == "_mm256_storeu_pd" || Callee == "_mm256_store_pd" ||
      Callee == "_mm_storeu_pd" || Callee == "_mm_store_pd")
    return TC.getVoid();
  if (Callee == "_mm256_cvtsd_f64" || Callee == "_mm_cvtsd_f64")
    return TC.getDouble();

  // printf-style output (examples): int.
  if (Callee == "printf" || Callee == "puts")
    return TC.getInt();
  (void)Args;
  return nullptr;
}

const Type *Sema::checkExpr(Expr *E) {
  if (!E)
    return nullptr;
  TypeContext &TC = Ctx.types();
  switch (E->getKind()) {
  case Expr::Kind::IntLiteral:
  case Expr::Kind::FloatLiteral:
    return E->getType();
  case Expr::Kind::DeclRef: {
    auto *Ref = static_cast<DeclRefExpr *>(E);
    if (Ref->getDecl())
      E->setType(Ref->getDecl()->getType());
    else if (!E->getType())
      E->setType(TC.getDouble()); // error already diagnosed by the parser
    return E->getType();
  }
  case Expr::Kind::Paren: {
    auto *P = static_cast<ParenExpr *>(E);
    E->setType(checkExpr(P->getInner()));
    return E->getType();
  }
  case Expr::Kind::Unary: {
    auto *U = static_cast<UnaryExpr *>(E);
    const Type *OpTy = checkExpr(U->getOperand());
    if (!OpTy)
      return nullptr;
    switch (U->getOp()) {
    case UnaryOpKind::Plus:
    case UnaryOpKind::Minus:
      if (!OpTy->isArithmetic() && !OpTy->isVector())
        Diags.error(E->getLoc(), "unary +/- requires an arithmetic operand");
      E->setType(OpTy);
      break;
    case UnaryOpKind::Not:
      E->setType(TC.getInt());
      break;
    case UnaryOpKind::BitNot:
      if (!OpTy->isInteger())
        Diags.error(E->getLoc(), "operator ~ requires an integer operand");
      E->setType(OpTy);
      break;
    case UnaryOpKind::PreInc:
    case UnaryOpKind::PreDec:
    case UnaryOpKind::PostInc:
    case UnaryOpKind::PostDec:
      if (!isLvalue(U->getOperand()))
        Diags.error(E->getLoc(), "increment/decrement requires an lvalue");
      E->setType(OpTy);
      break;
    case UnaryOpKind::AddrOf:
      if (!isLvalue(U->getOperand()))
        Diags.error(E->getLoc(), "cannot take the address of an rvalue");
      E->setType(TC.getPointer(OpTy));
      break;
    case UnaryOpKind::Deref:
      if (OpTy->isPointer() || OpTy->isArray())
        E->setType(OpTy->getElement());
      else {
        Diags.error(E->getLoc(), "cannot dereference a non-pointer");
        E->setType(TC.getDouble());
      }
      break;
    }
    return E->getType();
  }
  case Expr::Kind::Binary: {
    auto *B = static_cast<BinaryExpr *>(E);
    const Type *L = checkExpr(B->getLhs());
    const Type *R = checkExpr(B->getRhs());
    if (!L || !R)
      return nullptr;
    // Pointer arithmetic: ptr +- int keeps the pointer type.
    if ((L->isPointer() || L->isArray()) && R->isInteger() &&
        (B->getOp() == BinaryOpKind::Add || B->getOp() == BinaryOpKind::Sub)) {
      E->setType(L->isArray() ? TC.getPointer(L->getElement()) : L);
      return E->getType();
    }
    if (B->isComparison()) {
      E->setType(TC.getBool());
      return E->getType();
    }
    if (B->getOp() == BinaryOpKind::LAnd || B->getOp() == BinaryOpKind::LOr) {
      E->setType(TC.getBool());
      return E->getType();
    }
    if (L->isVector() || R->isVector()) {
      if (L != R)
        Diags.error(E->getLoc(), "vector operands must have the same type");
      E->setType(L->isVector() ? L : R);
      return E->getType();
    }
    if (!L->isArithmetic() || !R->isArithmetic()) {
      Diags.error(E->getLoc(), "invalid operands to binary operator");
      E->setType(TC.getDouble());
      return E->getType();
    }
    const Type *Common = commonArithmetic(L, R);
    // Only insert conversions across the int/float boundary (integer rank
    // games do not matter for the rewriting).
    if (Common->isFloating() || Common->isAffine()) {
      // Rebuild with converted operands.
      // (We cannot reseat children in place, so wrap via convert().)
      if (L != Common)
        B->setLhs(convert(B->getLhs(), Common));
      if (R != Common)
        B->setRhs(convert(B->getRhs(), Common));
    }
    E->setType(Common);
    return E->getType();
  }
  case Expr::Kind::Assign: {
    auto *A = static_cast<AssignExpr *>(E);
    const Type *L = checkExpr(A->getLhs());
    checkExpr(A->getRhs());
    if (!isLvalue(A->getLhs()))
      Diags.error(E->getLoc(), "assignment requires an lvalue");
    if (L && L->isArithmetic())
      A->setRhs(convert(A->getRhs(), L));
    E->setType(L);
    return E->getType();
  }
  case Expr::Kind::Subscript: {
    auto *S = static_cast<SubscriptExpr *>(E);
    const Type *BaseTy = checkExpr(S->getBase());
    const Type *IdxTy = checkExpr(S->getIndex());
    if (IdxTy && !IdxTy->isInteger())
      Diags.error(S->getIndex()->getLoc(), "array subscript is not an integer");
    if (BaseTy && (BaseTy->isPointer() || BaseTy->isArray()))
      E->setType(BaseTy->getElement());
    else {
      Diags.error(E->getLoc(), "subscripted value is not an array or pointer");
      E->setType(TC.getDouble());
    }
    return E->getType();
  }
  case Expr::Kind::Call: {
    auto *C = static_cast<CallExpr *>(E);
    for (Expr *Arg : C->getArgs())
      checkExpr(Arg);
    // Calls to functions defined in this TU.
    if (FunctionDecl *F = Ctx.tu().findFunction(C->getCallee())) {
      E->setType(F->getReturnType());
      return E->getType();
    }
    if (const Type *T = builtinCallType(C->getCallee(), C->getArgs())) {
      E->setType(T);
      return E->getType();
    }
    Diags.warning(E->getLoc(),
                  "call to unknown function '" + C->getCallee() +
                      "' assumed to return double");
    E->setType(TC.getDouble());
    return E->getType();
  }
  case Expr::Kind::Cast: {
    auto *C = static_cast<CastExpr *>(E);
    checkExpr(C->getOperand());
    return E->getType();
  }
  case Expr::Kind::Conditional: {
    auto *C = static_cast<ConditionalExpr *>(E);
    checkExpr(C->getCond());
    const Type *T = checkExpr(C->getTrueExpr());
    const Type *F = checkExpr(C->getFalseExpr());
    if (T && F && T->isArithmetic() && F->isArithmetic())
      E->setType(commonArithmetic(T, F));
    else
      E->setType(T ? T : F);
    return E->getType();
  }
  }
  return nullptr;
}
