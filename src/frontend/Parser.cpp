//===- Parser.cpp ---------------------------------------------------------===//
//
// Part of the SafeGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"

#include <cassert>

using namespace safegen;
using namespace safegen::frontend;

std::string PragmaStmt::getPrioritizedVar() const {
  // Recognizes "#pragma safegen prioritize(<name>)".
  size_t P = Text.find("prioritize");
  if (P == std::string::npos || Text.find("safegen") == std::string::npos)
    return {};
  size_t L = Text.find('(', P);
  size_t R = Text.find(')', P);
  if (L == std::string::npos || R == std::string::npos || R <= L + 1)
    return {};
  std::string Name = Text.substr(L + 1, R - L - 1);
  // Trim whitespace.
  size_t B = Name.find_first_not_of(" \t");
  size_t E = Name.find_last_not_of(" \t");
  if (B == std::string::npos)
    return {};
  return Name.substr(B, E - B + 1);
}

bool Parser::expect(TokenKind K, const char *Context) {
  if (accept(K))
    return true;
  error(std::string("expected ") + tokenKindName(K) + " " + Context +
        ", found '" + tok().text() + "'");
  return false;
}

void Parser::recover() {
  unsigned Depth = 0;
  while (!at(TokenKind::Eof)) {
    if (at(TokenKind::LBrace))
      ++Depth;
    if (at(TokenKind::RBrace)) {
      // Consume stray closers too — returning without making progress
      // here would loop the caller forever.
      consume();
      if (Depth == 0)
        return;
      --Depth;
      continue;
    }
    if (at(TokenKind::Semicolon) && Depth == 0) {
      consume();
      return;
    }
    consume();
  }
}

void Parser::declare(VarDecl *D) {
  assert(!Scopes.empty() && "no active scope");
  auto &Scope = Scopes.back();
  if (Scope.count(D->getName()))
    Diags.error(D->getLoc(), "redefinition of '" + D->getName() + "'");
  Scope[D->getName()] = D;
}

VarDecl *Parser::lookup(const std::string &Name) const {
  for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
    auto Found = It->find(Name);
    if (Found != It->end())
      return Found->second;
  }
  return nullptr;
}

bool Parser::atTypeSpecifier() const {
  switch (tok().Kind) {
  case TokenKind::KwVoid:
  case TokenKind::KwInt:
  case TokenKind::KwLong:
  case TokenKind::KwUnsigned:
  case TokenKind::KwFloat:
  case TokenKind::KwDouble:
  case TokenKind::KwConst:
  case TokenKind::KwStatic:
    return true;
  case TokenKind::Identifier:
    // SIMD builtins act as type names.
    return Ctx.types().lookupBuiltin(tok().text()) != nullptr;
  default:
    return false;
  }
}

const Type *Parser::parseTypeSpecifier() {
  // Storage/qualifier prefixes are accepted and dropped (const is carried
  // per declarator by the caller where it matters).
  while (at(TokenKind::KwConst) || at(TokenKind::KwStatic))
    consume();

  const Type *T = nullptr;
  switch (tok().Kind) {
  case TokenKind::KwVoid:
    consume();
    T = Ctx.types().getVoid();
    break;
  case TokenKind::KwInt:
    consume();
    T = Ctx.types().getInt();
    break;
  case TokenKind::KwLong:
    consume();
    accept(TokenKind::KwLong); // long long
    accept(TokenKind::KwInt);
    T = Ctx.types().getLong();
    break;
  case TokenKind::KwUnsigned:
    consume();
    accept(TokenKind::KwInt);
    accept(TokenKind::KwLong);
    T = Ctx.types().getUInt();
    break;
  case TokenKind::KwFloat:
    consume();
    T = Ctx.types().getFloat();
    break;
  case TokenKind::KwDouble:
    consume();
    T = Ctx.types().getDouble();
    break;
  case TokenKind::Identifier:
    T = Ctx.types().lookupBuiltin(tok().text());
    if (T) {
      consume();
      break;
    }
    [[fallthrough]];
  default:
    error("expected type specifier, found '" + tok().text() + "'");
    return Ctx.types().getInt();
  }
  while (at(TokenKind::KwConst))
    consume();
  // Pointer declarators.
  while (at(TokenKind::Star)) {
    consume();
    while (at(TokenKind::KwConst))
      consume();
    T = Ctx.types().getPointer(T);
  }
  return T;
}

const Type *Parser::parseDeclaratorSuffix(const Type *Base, std::string &Name,
                                          bool AllowUnsized) {
  // Caller consumed the identifier already; parse [N][M]... suffixes.
  (void)Name;
  std::vector<uint64_t> Extents;
  while (accept(TokenKind::LBracket)) {
    if (accept(TokenKind::RBracket)) {
      if (!AllowUnsized)
        error("array extent required here");
      Extents.push_back(0);
      continue;
    }
    if (at(TokenKind::IntLiteral)) {
      Extents.push_back(static_cast<uint64_t>(tok().IntValue));
      consume();
    } else if (at(TokenKind::Identifier)) {
      // Symbolic extents (e.g. macros expanded away) are not supported;
      // treat as unsized pointer-style.
      error("array extent must be an integer literal");
      consume();
      Extents.push_back(0);
    } else {
      error("array extent must be an integer literal");
    }
    expect(TokenKind::RBracket, "after array extent");
  }
  const Type *T = Base;
  for (auto It = Extents.rbegin(); It != Extents.rend(); ++It)
    T = Ctx.types().getArray(T, *It);
  return T;
}

bool Parser::parseTranslationUnit() {
  pushScope(); // file scope
  unsigned ErrorsBefore = Diags.getNumErrors();
  while (!at(TokenKind::Eof)) {
    if (Diags.getNumErrors() - ErrorsBefore > 100) {
      Diags.error(tok().Loc, "too many errors, giving up");
      break;
    }
    if (at(TokenKind::PreprocessorLine) || at(TokenKind::PragmaLine)) {
      Ctx.tu().PreambleLines.push_back(tok().text());
      consume();
      continue;
    }
    unsigned IndexBefore = Index;
    Decl *D = parseTopLevel();
    if (D)
      Ctx.tu().Decls.push_back(D);
    if (Index == IndexBefore && !at(TokenKind::Eof))
      consume(); // guarantee forward progress on hopeless input
  }
  popScope();
  return Diags.getNumErrors() == ErrorsBefore;
}

Decl *Parser::parseTopLevel() {
  if (!atTypeSpecifier()) {
    error("expected a declaration at file scope, found '" + tok().text() +
          "'");
    recover();
    return nullptr;
  }
  const Type *T = parseTypeSpecifier();
  if (!at(TokenKind::Identifier)) {
    error("expected declarator name");
    recover();
    return nullptr;
  }
  Token NameTok = consume();

  if (at(TokenKind::LParen))
    return parseFunctionRest(T, NameTok.text(), NameTok.Loc);

  // Global variable(s).
  std::vector<VarDecl *> Vars;
  std::string Name = NameTok.text();
  for (;;) {
    const Type *DT = parseDeclaratorSuffix(T, Name, /*AllowUnsized=*/false);
    Expr *Init = nullptr;
    if (accept(TokenKind::Equal))
      Init = parseAssignment();
    VarDecl *D = Ctx.create<VarDecl>(Name, DT, Init, NameTok.Loc);
    declare(D);
    Vars.push_back(D);
    Ctx.tu().Decls.push_back(D);
    if (!accept(TokenKind::Comma))
      break;
    if (!at(TokenKind::Identifier)) {
      error("expected declarator after ','");
      break;
    }
    NameTok = consume();
    Name = NameTok.text();
  }
  expect(TokenKind::Semicolon, "after declaration");
  return nullptr; // already appended
}

FunctionDecl *Parser::parseFunctionRest(const Type *RetTy, std::string Name,
                                        SourceLocation Loc) {
  expect(TokenKind::LParen, "in function declarator");
  pushScope();
  std::vector<VarDecl *> Params;
  if (!at(TokenKind::RParen)) {
    for (;;) {
      if (at(TokenKind::KwVoid) && tok(1).is(TokenKind::RParen)) {
        consume();
        break;
      }
      const Type *PT = parseTypeSpecifier();
      std::string PName;
      if (at(TokenKind::Identifier)) {
        PName = consume().text();
      }
      PT = parseDeclaratorSuffix(PT, PName, /*AllowUnsized=*/true);
      // Array parameters decay to pointers (outermost dimension only if
      // unsized).
      if (PT->isArray() && PT->getArraySize() == 0)
        PT = Ctx.types().getPointer(PT->getElement());
      VarDecl *P = Ctx.create<VarDecl>(PName, PT, nullptr, Loc,
                                       /*IsParam=*/true);
      if (!PName.empty())
        declare(P);
      Params.push_back(P);
      if (!accept(TokenKind::Comma))
        break;
    }
  }
  expect(TokenKind::RParen, "after parameter list");

  CompoundStmt *Body = nullptr;
  if (at(TokenKind::LBrace))
    Body = parseCompound();
  else
    expect(TokenKind::Semicolon, "after function declaration");
  popScope();
  FunctionDecl *F =
      Ctx.create<FunctionDecl>(std::move(Name), RetTy, std::move(Params),
                               Body, Loc);
  return F;
}

CompoundStmt *Parser::parseCompound() {
  SourceLocation Loc = tok().Loc;
  expect(TokenKind::LBrace, "to begin block");
  pushScope();
  std::vector<Stmt *> Body;
  while (!at(TokenKind::RBrace) && !at(TokenKind::Eof)) {
    Stmt *S = parseStmt();
    if (S)
      Body.push_back(S);
  }
  expect(TokenKind::RBrace, "to close block");
  popScope();
  return Ctx.create<CompoundStmt>(std::move(Body), Loc);
}

Stmt *Parser::parseDeclStmt() {
  SourceLocation Loc = tok().Loc;
  const Type *T = parseTypeSpecifier();
  std::vector<VarDecl *> Decls;
  for (;;) {
    // Each declarator may add its own pointer stars.
    const Type *DeclT = T;
    while (accept(TokenKind::Star))
      DeclT = Ctx.types().getPointer(DeclT);
    if (!at(TokenKind::Identifier)) {
      error("expected declarator name");
      recover();
      break;
    }
    Token NameTok = consume();
    std::string Name = NameTok.text();
    DeclT = parseDeclaratorSuffix(DeclT, Name, /*AllowUnsized=*/false);
    Expr *Init = nullptr;
    if (accept(TokenKind::Equal))
      Init = parseAssignment();
    VarDecl *D = Ctx.create<VarDecl>(Name, DeclT, Init, NameTok.Loc);
    declare(D);
    Decls.push_back(D);
    if (!accept(TokenKind::Comma))
      break;
  }
  expect(TokenKind::Semicolon, "after declaration");
  return Ctx.create<DeclStmt>(std::move(Decls), Loc);
}

Stmt *Parser::parseFor() {
  SourceLocation Loc = tok().Loc;
  consume(); // 'for'
  expect(TokenKind::LParen, "after 'for'");
  pushScope();
  Stmt *Init = nullptr;
  if (accept(TokenKind::Semicolon)) {
    // empty init
  } else if (atTypeSpecifier()) {
    Init = parseDeclStmt();
  } else {
    Expr *E = parseExpr();
    expect(TokenKind::Semicolon, "after for-init");
    Init = Ctx.create<ExprStmt>(E, Loc);
  }
  Expr *Cond = nullptr;
  if (!at(TokenKind::Semicolon))
    Cond = parseExpr();
  expect(TokenKind::Semicolon, "after for-condition");
  Expr *Inc = nullptr;
  if (!at(TokenKind::RParen))
    Inc = parseExpr();
  expect(TokenKind::RParen, "after for-increment");
  Stmt *Body = parseStmt();
  popScope();
  return Ctx.create<ForStmt>(Init, Cond, Inc, Body, Loc);
}

Stmt *Parser::parseStmt() {
  SourceLocation Loc = tok().Loc;
  switch (tok().Kind) {
  case TokenKind::LBrace:
    return parseCompound();
  case TokenKind::Semicolon:
    consume();
    return Ctx.create<NullStmt>(Loc);
  case TokenKind::PragmaLine: {
    std::string Text = consume().text();
    return Ctx.create<PragmaStmt>(std::move(Text), Loc);
  }
  case TokenKind::PreprocessorLine:
    error("preprocessor directives are only supported at file scope");
    consume();
    return nullptr;
  case TokenKind::KwIf: {
    consume();
    expect(TokenKind::LParen, "after 'if'");
    Expr *Cond = parseExpr();
    expect(TokenKind::RParen, "after if-condition");
    Stmt *Then = parseStmt();
    Stmt *Else = nullptr;
    if (accept(TokenKind::KwElse))
      Else = parseStmt();
    return Ctx.create<IfStmt>(Cond, Then, Else, Loc);
  }
  case TokenKind::KwFor:
    return parseFor();
  case TokenKind::KwWhile: {
    consume();
    expect(TokenKind::LParen, "after 'while'");
    Expr *Cond = parseExpr();
    expect(TokenKind::RParen, "after while-condition");
    Stmt *Body = parseStmt();
    return Ctx.create<WhileStmt>(Cond, Body, Loc);
  }
  case TokenKind::KwDo: {
    consume();
    Stmt *Body = parseStmt();
    expect(TokenKind::KwWhile, "after do-body");
    expect(TokenKind::LParen, "after 'while'");
    Expr *Cond = parseExpr();
    expect(TokenKind::RParen, "after do-condition");
    expect(TokenKind::Semicolon, "after do-while");
    return Ctx.create<DoWhileStmt>(Body, Cond, Loc);
  }
  case TokenKind::KwReturn: {
    consume();
    Expr *Value = nullptr;
    if (!at(TokenKind::Semicolon))
      Value = parseExpr();
    expect(TokenKind::Semicolon, "after return");
    return Ctx.create<ReturnStmt>(Value, Loc);
  }
  case TokenKind::KwBreak:
    consume();
    expect(TokenKind::Semicolon, "after 'break'");
    return Ctx.create<BreakStmt>(Loc);
  case TokenKind::KwContinue:
    consume();
    expect(TokenKind::Semicolon, "after 'continue'");
    return Ctx.create<ContinueStmt>(Loc);
  default:
    if (atTypeSpecifier())
      return parseDeclStmt();
    Expr *E = parseExpr();
    expect(TokenKind::Semicolon, "after expression");
    return Ctx.create<ExprStmt>(E, Loc);
  }
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

Expr *Parser::parseExpr() { return parseAssignment(); }

Expr *Parser::parseAssignment() {
  Expr *Lhs = parseConditional();
  AssignOpKind Op;
  switch (tok().Kind) {
  case TokenKind::Equal:
    Op = AssignOpKind::Assign;
    break;
  case TokenKind::PlusEqual:
    Op = AssignOpKind::AddAssign;
    break;
  case TokenKind::MinusEqual:
    Op = AssignOpKind::SubAssign;
    break;
  case TokenKind::StarEqual:
    Op = AssignOpKind::MulAssign;
    break;
  case TokenKind::SlashEqual:
    Op = AssignOpKind::DivAssign;
    break;
  default:
    return Lhs;
  }
  SourceLocation Loc = tok().Loc;
  consume();
  Expr *Rhs = parseAssignment();
  return Ctx.create<AssignExpr>(Op, Lhs, Rhs, Lhs->getType(), Loc);
}

Expr *Parser::parseConditional() {
  Expr *Cond = parseBinary(0);
  if (!at(TokenKind::Question))
    return Cond;
  SourceLocation Loc = consume().Loc;
  Expr *TrueE = parseExpr();
  expect(TokenKind::Colon, "in conditional expression");
  Expr *FalseE = parseConditional();
  return Ctx.create<ConditionalExpr>(Cond, TrueE, FalseE, TrueE->getType(),
                                     Loc);
}

namespace {
struct BinOpInfo {
  BinaryOpKind Kind;
  int Prec;
};
} // namespace

static bool binOpInfo(TokenKind K, BinOpInfo &Info) {
  switch (K) {
  case TokenKind::PipePipe:
    Info = {BinaryOpKind::LOr, 1};
    return true;
  case TokenKind::AmpAmp:
    Info = {BinaryOpKind::LAnd, 2};
    return true;
  case TokenKind::Pipe:
    Info = {BinaryOpKind::BitOr, 3};
    return true;
  case TokenKind::Caret:
    Info = {BinaryOpKind::BitXor, 4};
    return true;
  case TokenKind::Amp:
    Info = {BinaryOpKind::BitAnd, 5};
    return true;
  case TokenKind::EqualEqual:
    Info = {BinaryOpKind::Eq, 6};
    return true;
  case TokenKind::BangEqual:
    Info = {BinaryOpKind::Ne, 6};
    return true;
  case TokenKind::Less:
    Info = {BinaryOpKind::Lt, 7};
    return true;
  case TokenKind::Greater:
    Info = {BinaryOpKind::Gt, 7};
    return true;
  case TokenKind::LessEqual:
    Info = {BinaryOpKind::Le, 7};
    return true;
  case TokenKind::GreaterEqual:
    Info = {BinaryOpKind::Ge, 7};
    return true;
  case TokenKind::LessLess:
    Info = {BinaryOpKind::Shl, 8};
    return true;
  case TokenKind::GreaterGreater:
    Info = {BinaryOpKind::Shr, 8};
    return true;
  case TokenKind::Plus:
    Info = {BinaryOpKind::Add, 9};
    return true;
  case TokenKind::Minus:
    Info = {BinaryOpKind::Sub, 9};
    return true;
  case TokenKind::Star:
    Info = {BinaryOpKind::Mul, 10};
    return true;
  case TokenKind::Slash:
    Info = {BinaryOpKind::Div, 10};
    return true;
  case TokenKind::Percent:
    Info = {BinaryOpKind::Rem, 10};
    return true;
  default:
    return false;
  }
}

Expr *Parser::parseBinary(int MinPrec) {
  Expr *Lhs = parseUnary();
  for (;;) {
    BinOpInfo Info;
    if (!binOpInfo(tok().Kind, Info) || Info.Prec < MinPrec)
      return Lhs;
    SourceLocation Loc = consume().Loc;
    Expr *Rhs = parseBinary(Info.Prec + 1);
    Lhs = Ctx.create<BinaryExpr>(Info.Kind, Lhs, Rhs, nullptr, Loc);
  }
}

Expr *Parser::parseUnary() {
  SourceLocation Loc = tok().Loc;
  switch (tok().Kind) {
  case TokenKind::Plus:
    consume();
    return Ctx.create<UnaryExpr>(UnaryOpKind::Plus, parseUnary(), nullptr,
                                 Loc);
  case TokenKind::Minus:
    consume();
    return Ctx.create<UnaryExpr>(UnaryOpKind::Minus, parseUnary(), nullptr,
                                 Loc);
  case TokenKind::Bang:
    consume();
    return Ctx.create<UnaryExpr>(UnaryOpKind::Not, parseUnary(), nullptr,
                                 Loc);
  case TokenKind::Tilde:
    consume();
    return Ctx.create<UnaryExpr>(UnaryOpKind::BitNot, parseUnary(), nullptr,
                                 Loc);
  case TokenKind::PlusPlus:
    consume();
    return Ctx.create<UnaryExpr>(UnaryOpKind::PreInc, parseUnary(), nullptr,
                                 Loc);
  case TokenKind::MinusMinus:
    consume();
    return Ctx.create<UnaryExpr>(UnaryOpKind::PreDec, parseUnary(), nullptr,
                                 Loc);
  case TokenKind::Amp:
    consume();
    return Ctx.create<UnaryExpr>(UnaryOpKind::AddrOf, parseUnary(), nullptr,
                                 Loc);
  case TokenKind::Star:
    consume();
    return Ctx.create<UnaryExpr>(UnaryOpKind::Deref, parseUnary(), nullptr,
                                 Loc);
  case TokenKind::LParen:
    // Cast expression: "(type) unary".
    if (tok(1).isOneOf(TokenKind::KwVoid, TokenKind::KwInt, TokenKind::KwLong,
                       TokenKind::KwUnsigned, TokenKind::KwFloat,
                       TokenKind::KwDouble, TokenKind::KwConst) ||
        (tok(1).is(TokenKind::Identifier) &&
         Ctx.types().lookupBuiltin(tok(1).text()) != nullptr)) {
      consume();
      const Type *T = parseTypeSpecifier();
      expect(TokenKind::RParen, "after cast type");
      Expr *Operand = parseUnary();
      return Ctx.create<CastExpr>(Operand, T, /*Implicit=*/false, Loc);
    }
    return parsePostfix();
  default:
    return parsePostfix();
  }
}

Expr *Parser::parsePostfix() {
  Expr *E = parsePrimary();
  for (;;) {
    SourceLocation Loc = tok().Loc;
    if (accept(TokenKind::LBracket)) {
      Expr *Index = parseExpr();
      expect(TokenKind::RBracket, "after subscript");
      E = Ctx.create<SubscriptExpr>(E, Index, nullptr, Loc);
    } else if (at(TokenKind::PlusPlus)) {
      consume();
      E = Ctx.create<UnaryExpr>(UnaryOpKind::PostInc, E, E->getType(), Loc);
    } else if (at(TokenKind::MinusMinus)) {
      consume();
      E = Ctx.create<UnaryExpr>(UnaryOpKind::PostDec, E, E->getType(), Loc);
    } else {
      return E;
    }
  }
}

Expr *Parser::parsePrimary() {
  SourceLocation Loc = tok().Loc;
  switch (tok().Kind) {
  case TokenKind::IntLiteral: {
    Token T = consume();
    return Ctx.create<IntLiteralExpr>(T.IntValue, Ctx.types().getInt(), Loc);
  }
  case TokenKind::FloatLiteral: {
    Token T = consume();
    const Type *Ty = Ctx.types().getDouble();
    if (!T.Text.empty() &&
        (T.Text.back() == 'f' || T.Text.back() == 'F'))
      Ty = Ctx.types().getFloat();
    return Ctx.create<FloatLiteralExpr>(T.FloatValue, T.text(), Ty, Loc);
  }
  case TokenKind::Identifier: {
    Token T = consume();
    if (at(TokenKind::LParen)) {
      consume();
      std::vector<Expr *> Args;
      if (!at(TokenKind::RParen)) {
        for (;;) {
          Args.push_back(parseAssignment());
          if (!accept(TokenKind::Comma))
            break;
        }
      }
      expect(TokenKind::RParen, "after call arguments");
      return Ctx.create<CallExpr>(T.text(), std::move(Args), nullptr, Loc);
    }
    VarDecl *D = lookup(T.text());
    if (!D)
      Diags.error(Loc, "use of undeclared identifier '" + T.text() + "'");
    return Ctx.create<DeclRefExpr>(D, D ? D->getType() : nullptr, Loc,
                                   T.text());
  }
  case TokenKind::LParen: {
    consume();
    Expr *Inner = parseExpr();
    expect(TokenKind::RParen, "after parenthesized expression");
    return Ctx.create<ParenExpr>(Inner, Loc);
  }
  case TokenKind::KwSizeof: {
    consume();
    // sizeof(type) or sizeof expr: folded to an int literal of 8/4 for the
    // supported scalar types (sufficient for the benchmark subset).
    long long Size = 8;
    if (accept(TokenKind::LParen)) {
      if (atTypeSpecifier()) {
        const Type *T = parseTypeSpecifier();
        if (T->getKind() == Type::Kind::Half ||
            T->getKind() == Type::Kind::BFloat16)
          Size = 2;
        else
          Size = T->getKind() == Type::Kind::Float ||
                         T->getKind() == Type::Kind::Int
                     ? 4
                     : 8;
      } else {
        parseExpr();
      }
      expect(TokenKind::RParen, "after sizeof");
    } else {
      parseUnary();
    }
    return Ctx.create<IntLiteralExpr>(Size, Ctx.types().getLong(), Loc);
  }
  default:
    error("expected expression, found '" + tok().text() + "'");
    consume();
    return Ctx.create<IntLiteralExpr>(0, Ctx.types().getInt(), Loc);
  }
}
