//===- Frontend.h - One-call parse + sema facade ----------------*- C++ -*-===//
//
// Part of the SafeGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#ifndef SAFEGEN_FRONTEND_FRONTEND_H
#define SAFEGEN_FRONTEND_FRONTEND_H

#include "frontend/AST.h"
#include "support/Diagnostics.h"
#include "support/SourceManager.h"

#include <memory>
#include <string>

namespace safegen {
namespace frontend {

/// Everything produced by one frontend run. Keep it alive as long as any
/// AST pointer is used.
struct CompilationUnit {
  SourceManager SM;
  DiagnosticsEngine Diags;
  std::unique_ptr<ASTContext> Ctx;
  bool Success = false;

  CompilationUnit() : Diags(&SM) {}
};

/// Lexes, parses and type-checks \p Source (named \p FileName in
/// diagnostics). Always returns a unit; check Success / Diags.
std::unique_ptr<CompilationUnit> parseSource(std::string FileName,
                                             std::string Source);

/// Convenience: reads \p Path from disk first. Returns null if unreadable.
std::unique_ptr<CompilationUnit> parseFile(const std::string &Path);

} // namespace frontend
} // namespace safegen

#endif // SAFEGEN_FRONTEND_FRONTEND_H
