//===- Token.h - Lexer tokens -----------------------------------*- C++ -*-===//
//
// Part of the SafeGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#ifndef SAFEGEN_FRONTEND_TOKEN_H
#define SAFEGEN_FRONTEND_TOKEN_H

#include "support/SourceLocation.h"

#include <string>
#include <string_view>

namespace safegen {
namespace frontend {

enum class TokenKind {
  Eof,
  Identifier,
  IntLiteral,
  FloatLiteral,
  StringLiteral,

  // Keywords.
  KwVoid, KwInt, KwLong, KwUnsigned, KwFloat, KwDouble, KwConst, KwStatic,
  KwIf, KwElse, KwFor, KwWhile, KwDo, KwReturn, KwBreak, KwContinue,
  KwSizeof,

  // Punctuation.
  LParen, RParen, LBrace, RBrace, LBracket, RBracket,
  Comma, Semicolon,
  Plus, Minus, Star, Slash, Percent,
  Amp, Pipe, Caret, Tilde, Bang,
  AmpAmp, PipePipe,
  Less, Greater, LessEqual, GreaterEqual, EqualEqual, BangEqual,
  LessLess, GreaterGreater,
  Equal, PlusEqual, MinusEqual, StarEqual, SlashEqual,
  PlusPlus, MinusMinus,
  Question, Colon, Dot, Arrow,

  /// A whole `#pragma ...` line (SafeGen's annotation channel, Sec. VI-C).
  PragmaLine,
  /// A whole `#include ...` or other preprocessor line, passed through.
  PreprocessorLine,
};

/// One lexed token. Text references the source buffer (no copies).
struct Token {
  TokenKind Kind = TokenKind::Eof;
  std::string_view Text;
  SourceLocation Loc;
  /// Decoded literal values.
  double FloatValue = 0.0;
  long long IntValue = 0;

  bool is(TokenKind K) const { return Kind == K; }
  bool isOneOf(TokenKind K1, TokenKind K2) const { return is(K1) || is(K2); }
  template <typename... Ts>
  bool isOneOf(TokenKind K1, TokenKind K2, Ts... Ks) const {
    return is(K1) || isOneOf(K2, Ks...);
  }
  std::string text() const { return std::string(Text); }
};

/// Human-readable token kind name for diagnostics.
const char *tokenKindName(TokenKind K);

} // namespace frontend
} // namespace safegen

#endif // SAFEGEN_FRONTEND_TOKEN_H
