//===- Frontend.cpp -------------------------------------------------------===//
//
// Part of the SafeGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "frontend/Frontend.h"
#include "frontend/Lexer.h"
#include "frontend/Parser.h"
#include "frontend/Sema.h"

using namespace safegen;
using namespace safegen::frontend;

std::unique_ptr<CompilationUnit> frontend::parseSource(std::string FileName,
                                                       std::string Source) {
  auto CU = std::make_unique<CompilationUnit>();
  CU->SM.setMainBuffer(std::move(FileName), std::move(Source));
  CU->Ctx = std::make_unique<ASTContext>();

  Lexer Lex(CU->SM, CU->Diags);
  Parser P(Lex.lexAll(), *CU->Ctx, CU->Diags);
  bool ParseOk = P.parseTranslationUnit();

  bool SemaOk = false;
  if (ParseOk) {
    Sema S(*CU->Ctx, CU->Diags);
    SemaOk = S.check();
  }
  CU->Success = ParseOk && SemaOk;
  return CU;
}

std::unique_ptr<CompilationUnit> frontend::parseFile(const std::string &Path) {
  SourceManager Probe;
  if (!Probe.loadFile(Path))
    return nullptr;
  return parseSource(Path, std::string(Probe.getBuffer()));
}
