//===- ASTVerifier.h - Non-mutating AST invariant checks --------*- C++ -*-===//
//
// Part of the SafeGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Re-checks the structural invariants Sema establishes — every reachable
/// expression carries a type, assignment targets are lvalues, subscript
/// bases are pointers/arrays, statement and declaration children are
/// non-null — without mutating the AST (Sema itself splices in implicit
/// casts, so it cannot be re-run between passes). The PassManager runs
/// this after every pass under `--verify-each`, so a transformation that
/// produces an ill-typed AST fails loudly at its own boundary instead of
/// as a mystery crash downstream.
///
/// The invariants are phrased to hold through the whole pipeline,
/// including after the affine rewrite (where declaration types change but
/// historic DeclRef types legitimately keep their pre-rewrite spelling).
///
//===----------------------------------------------------------------------===//

#ifndef SAFEGEN_FRONTEND_ASTVERIFIER_H
#define SAFEGEN_FRONTEND_ASTVERIFIER_H

#include "frontend/AST.h"

#include <string>
#include <vector>

namespace safegen {
namespace frontend {

/// Verifies the translation unit of \p Ctx. Returns true when every
/// invariant holds; otherwise appends one human-readable description per
/// violation to \p Failures (at most ~20, to keep reports bounded).
bool verifyAST(ASTContext &Ctx, std::vector<std::string> &Failures);

} // namespace frontend
} // namespace safegen

#endif // SAFEGEN_FRONTEND_ASTVERIFIER_H
