//===- ASTVerifier.cpp ----------------------------------------------------===//
//
// Part of the SafeGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "frontend/ASTVerifier.h"

#include <sstream>

using namespace safegen;
using namespace safegen::frontend;

namespace {

class Verifier {
public:
  Verifier(std::vector<std::string> &Failures) : Failures(Failures) {}

  bool run(TranslationUnit &TU) {
    for (Decl *D : TU.Decls) {
      if (!D) {
        fail("null top-level declaration");
        continue;
      }
      if (D->getKind() == Decl::Kind::Function)
        verifyFunction(static_cast<FunctionDecl *>(D));
      else if (auto *V = static_cast<VarDecl *>(D);
               D->getKind() == Decl::Kind::Var) {
        if (!V->getType())
          fail("global '" + V->getName() + "' has no type");
        verifyExpr(V->getInit(), /*AllowNull=*/true);
      }
    }
    return NumFailures == 0;
  }

private:
  static constexpr unsigned MaxReports = 20;

  void fail(std::string Message) {
    if (NumFailures++ < MaxReports) {
      if (!Where.empty())
        Message = Where + ": " + Message;
      Failures.push_back(std::move(Message));
    }
  }

  void verifyFunction(FunctionDecl *F) {
    Where = "function '" + F->getName() + "'";
    if (!F->getReturnType())
      fail("missing return type");
    for (VarDecl *P : F->getParams()) {
      if (!P)
        fail("null parameter declaration");
      else if (!P->getType())
        fail("parameter '" + P->getName() + "' has no type");
    }
    if (F->isDefinition())
      verifyStmt(F->getBody());
    Where.clear();
  }

  bool isLvalue(const Expr *E) const {
    switch (E->getKind()) {
    case Expr::Kind::DeclRef:
    case Expr::Kind::Subscript:
      return true;
    case Expr::Kind::Paren:
      return isLvalue(static_cast<const ParenExpr *>(E)->getInner());
    case Expr::Kind::Unary:
      return static_cast<const UnaryExpr *>(E)->getOp() == UnaryOpKind::Deref;
    default:
      return false;
    }
  }

  void verifyExpr(Expr *E, bool AllowNull = false) {
    if (!E) {
      if (!AllowNull)
        fail("null expression operand");
      return;
    }
    if (!E->getType()) {
      std::ostringstream OS;
      OS << "expression (kind " << static_cast<int>(E->getKind())
         << ") has no type at line " << E->getLoc().Line;
      fail(OS.str());
    }
    switch (E->getKind()) {
    case Expr::Kind::IntLiteral:
    case Expr::Kind::FloatLiteral:
    case Expr::Kind::DeclRef:
      return;
    case Expr::Kind::Paren:
      verifyExpr(static_cast<ParenExpr *>(E)->getInner());
      return;
    case Expr::Kind::Unary:
      verifyExpr(static_cast<UnaryExpr *>(E)->getOperand());
      return;
    case Expr::Kind::Binary: {
      auto *B = static_cast<BinaryExpr *>(E);
      verifyExpr(B->getLhs());
      verifyExpr(B->getRhs());
      return;
    }
    case Expr::Kind::Assign: {
      auto *A = static_cast<AssignExpr *>(E);
      verifyExpr(A->getLhs());
      verifyExpr(A->getRhs());
      if (A->getLhs() && !isLvalue(A->getLhs()))
        fail("assignment target is not an lvalue");
      return;
    }
    case Expr::Kind::Subscript: {
      auto *S = static_cast<SubscriptExpr *>(E);
      verifyExpr(S->getBase());
      verifyExpr(S->getIndex());
      const Type *BaseTy = S->getBase() ? S->getBase()->getType() : nullptr;
      // Vector bases are per-lane accesses: the SIMD lowering retypes the
      // declaration to an array but references keep the vector spelling.
      if (BaseTy && !BaseTy->isPointer() && !BaseTy->isArray() &&
          !BaseTy->isVector())
        fail("subscript base is neither a pointer, an array, nor a vector");
      const Type *IdxTy = S->getIndex() ? S->getIndex()->getType() : nullptr;
      if (IdxTy && !IdxTy->isInteger())
        fail("array subscript is not an integer");
      return;
    }
    case Expr::Kind::Call:
      for (Expr *Arg : static_cast<CallExpr *>(E)->getArgs())
        verifyExpr(Arg);
      return;
    case Expr::Kind::Cast:
      verifyExpr(static_cast<CastExpr *>(E)->getOperand());
      return;
    case Expr::Kind::Conditional: {
      auto *C = static_cast<ConditionalExpr *>(E);
      verifyExpr(C->getCond());
      verifyExpr(C->getTrueExpr());
      verifyExpr(C->getFalseExpr());
      return;
    }
    }
  }

  void verifyStmt(Stmt *S) {
    if (!S) {
      fail("null statement");
      return;
    }
    switch (S->getKind()) {
    case Stmt::Kind::Compound:
      for (Stmt *Child : static_cast<CompoundStmt *>(S)->getBody())
        verifyStmt(Child);
      return;
    case Stmt::Kind::Decl:
      for (VarDecl *D : static_cast<DeclStmt *>(S)->getDecls()) {
        if (!D) {
          fail("null declaration in declaration statement");
          continue;
        }
        if (!D->getType())
          fail("variable '" + D->getName() + "' has no type");
        verifyExpr(D->getInit(), /*AllowNull=*/true);
      }
      return;
    case Stmt::Kind::Expr:
      verifyExpr(static_cast<ExprStmt *>(S)->getExpr());
      return;
    case Stmt::Kind::If: {
      auto *If = static_cast<IfStmt *>(S);
      verifyExpr(If->getCond());
      verifyStmt(If->getThen());
      if (If->getElse())
        verifyStmt(If->getElse());
      return;
    }
    case Stmt::Kind::For: {
      auto *For = static_cast<ForStmt *>(S);
      if (For->getInit())
        verifyStmt(For->getInit());
      verifyExpr(For->getCond(), /*AllowNull=*/true);
      verifyExpr(For->getInc(), /*AllowNull=*/true);
      verifyStmt(For->getBody());
      return;
    }
    case Stmt::Kind::While: {
      auto *W = static_cast<WhileStmt *>(S);
      verifyExpr(W->getCond());
      verifyStmt(W->getBody());
      return;
    }
    case Stmt::Kind::DoWhile: {
      auto *D = static_cast<DoWhileStmt *>(S);
      verifyStmt(D->getBody());
      verifyExpr(D->getCond());
      return;
    }
    case Stmt::Kind::Return:
      verifyExpr(static_cast<ReturnStmt *>(S)->getValue(),
                 /*AllowNull=*/true);
      return;
    case Stmt::Kind::Break:
    case Stmt::Kind::Continue:
    case Stmt::Kind::Null:
    case Stmt::Kind::Pragma:
      return;
    }
  }

  std::vector<std::string> &Failures;
  std::string Where;
  unsigned NumFailures = 0;
};

} // namespace

bool frontend::verifyAST(ASTContext &Ctx,
                         std::vector<std::string> &Failures) {
  Verifier V(Failures);
  return V.run(Ctx.tu());
}
