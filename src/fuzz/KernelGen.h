//===- KernelGen.h - Random well-typed kernel generator ---------*- C++ -*-===//
//
// Part of the SafeGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates random, well-typed C kernels for soundness fuzzing (see
/// DESIGN.md, "Soundness fuzzing"). Kernels are held in a small mutable
/// IR so the failure minimizer can shrink them structurally; rendering
/// goes through the real frontend AST (frontend::ASTContext +
/// ASTPrinter), so every emitted program is syntactically valid by
/// construction and uses only constructs the interpreter and rewriter
/// support.
///
/// The generated grammar, by construction:
///   - all parameters are `double x0, x1, ...`;
///   - every local `double tI = <expr over params, t0..t{I-1}>;` is
///     declared (and thus defined) at the top of the function body;
///   - arrays `double aJ[4];` are declared at the top; loads/stores use
///     constant indices, so no access is ever out of bounds;
///   - loops are `for (int iN = 0; iN < <trip>; iN++)` with a constant
///     trip count — termination is structural, not semantic;
///   - branch conditions compare two FP expressions (decided by the AA
///     midpoint, as in generated SafeGen code);
///   - expressions use + - * /, unary minus, and the builtin calls the
///     interpreter models (sqrt, fabs, exp, log, sin, cos, fmax, fmin).
/// Domain excursions (sqrt of a negative range, log touching zero, ...)
/// are deliberately reachable: their semantics are defined (NaN = Top)
/// and the oracle must agree with the runtime about them.
///
//===----------------------------------------------------------------------===//

#ifndef SAFEGEN_FUZZ_KERNELGEN_H
#define SAFEGEN_FUZZ_KERNELGEN_H

#include "frontend/AST.h"

#include <memory>
#include <random>
#include <string>
#include <vector>

namespace safegen {
namespace fuzz {

struct KExpr;
using KExprPtr = std::unique_ptr<KExpr>;

/// One expression node of the kernel IR.
struct KExpr {
  enum class Kind {
    Const,     ///< non-negative FP literal (negation is a Unary node)
    Param,     ///< xIndex
    Local,     ///< tIndex
    ArrayLoad, ///< aIndex[Elem]
    Neg,       ///< -Kids[0]
    Binary,    ///< Kids[0] Op Kids[1]
    Call,      ///< Callee(Kids...)
  };

  Kind K = Kind::Const;
  double Value = 1.0;
  unsigned Index = 0;
  unsigned Elem = 0;
  frontend::BinaryOpKind Op = frontend::BinaryOpKind::Add;
  std::string Callee;
  std::vector<KExprPtr> Kids;

  KExprPtr clone() const;
  size_t size() const; ///< node count (minimizer progress metric)
};

KExprPtr makeConst(double V);
KExprPtr makeParam(unsigned I);
KExprPtr makeLocal(unsigned I);
KExprPtr makeBinary(frontend::BinaryOpKind Op, KExprPtr L, KExprPtr R);
KExprPtr makeCall(std::string Callee, std::vector<KExprPtr> Args);

/// One statement of the kernel IR.
struct KStmt {
  enum class Kind {
    Assign,     ///< tTarget Op= Rhs
    ArrayStore, ///< aTarget[Elem] = Rhs
    Loop,       ///< for (int i = 0; i < Trip; i++) Body
    If,         ///< if (CondL Cmp CondR) Body else Else
  };

  Kind K = Kind::Assign;
  unsigned Target = 0;
  unsigned Elem = 0;
  frontend::AssignOpKind Op = frontend::AssignOpKind::Assign;
  KExprPtr Rhs;
  unsigned Trip = 1;
  KExprPtr CondL, CondR;
  frontend::BinaryOpKind Cmp = frontend::BinaryOpKind::Lt;
  std::vector<KStmt> Body;
  std::vector<KStmt> Else;

  KStmt() = default;
  KStmt(KStmt &&) = default;
  KStmt &operator=(KStmt &&) = default;
  KStmt clone() const;
  size_t size() const;
};

/// A whole kernel: `double f(double x0, ..., x{NumParams-1})`.
struct Kernel {
  static constexpr unsigned ArrayLen = 4;

  unsigned NumParams = 1;
  /// Local tI is initialized with LocalInits[I], which may reference
  /// params and locals with index < I only.
  std::vector<KExprPtr> LocalInits;
  unsigned NumArrays = 0;
  std::vector<KStmt> Stmts;
  KExprPtr Ret;

  Kernel() = default;
  Kernel(Kernel &&) = default;
  Kernel &operator=(Kernel &&) = default;
  Kernel clone() const;
  size_t size() const;
};

/// Generator knobs. Defaults are sized so one kernel interprets in well
/// under a millisecond per configuration.
struct GenOptions {
  unsigned MinParams = 1;
  unsigned MaxParams = 4;
  unsigned MaxLocals = 5;
  unsigned MaxArrays = 2;
  unsigned MaxStmts = 7;  ///< top-level statement count
  unsigned MaxDepth = 4;  ///< expression tree depth
  unsigned MaxNest = 2;   ///< loop/if nesting depth
  unsigned MaxTrip = 6;   ///< loop trip count
  bool Nonlinear = true;  ///< allow /, sqrt, exp, log, sin, cos
};

/// Draws one random kernel. Deterministic in the RNG state.
Kernel generateKernel(std::mt19937_64 &Rng, const GenOptions &Opts);

/// Renders the kernel as compilable C source for a function named
/// \p Name, via the frontend AST and printer.
std::string renderKernel(const Kernel &K, const std::string &Name = "f");

/// A literal spelling that parses back to exactly \p V (requires
/// V >= 0 and finite).
std::string floatSpelling(double V);

} // namespace fuzz
} // namespace safegen

#endif // SAFEGEN_FUZZ_KERNELGEN_H
