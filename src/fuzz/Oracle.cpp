//===- Oracle.cpp ---------------------------------------------------------===//
//
// Part of the SafeGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Oracle.h"

#include "core/BatchKernel.h"
#include "core/Interpreter.h"
#include "core/Tape.h"
#include "frontend/Frontend.h"
#include "service/KernelCache.h"
#include "service/Wire.h"

#include <cmath>
#include <cstring>
#include <sstream>

using namespace safegen;
using namespace safegen::fuzz;

std::vector<aa::AAConfig> fuzz::defaultConfigGrid() {
  std::vector<aa::AAConfig> Grid;
  for (aa::PlacementPolicy P :
       {aa::PlacementPolicy::Sorted, aa::PlacementPolicy::DirectMapped})
    for (aa::FusionPolicy F :
         {aa::FusionPolicy::Smallest, aa::FusionPolicy::MeanThreshold,
          aa::FusionPolicy::Oldest, aa::FusionPolicy::Random})
      for (int K : {4, 16, 40}) {
        aa::AAConfig Cfg;
        Cfg.K = K;
        Cfg.Placement = P;
        Cfg.Fusion = F;
        Cfg.Vectorize = false;
        Cfg.Prioritize = false;
        Grid.push_back(Cfg);
      }
  // The 16-bit formats (f16a/bf16a) run on the format-generic scalar
  // tape in a dedicated pass (see checkKernelSource); two placements per
  // format at the default budget keep the grid affordable.
  for (aa::Format Fmt : {aa::Format::F16, aa::Format::BF16})
    for (aa::PlacementPolicy P :
         {aa::PlacementPolicy::Sorted, aa::PlacementPolicy::DirectMapped}) {
      aa::AAConfig Cfg;
      Cfg.Precision = Fmt;
      Cfg.K = 16;
      Cfg.Placement = P;
      Cfg.Fusion = aa::FusionPolicy::Smallest;
      Cfg.Vectorize = false;
      Cfg.Prioritize = false;
      Grid.push_back(Cfg);
    }
  return Grid;
}

std::string Verdict::str() const {
  if (Ok)
    return "ok";
  std::string S = Kind;
  if (!Config.empty())
    S += " [" + Config + "]";
  if (!Detail.empty())
    S += ": " + Detail;
  return S;
}

namespace {

uint64_t bitsOf(double X) {
  uint64_t B;
  std::memcpy(&B, &X, sizeof(B));
  return B;
}

/// Bit-identity modulo NaN representation. IEEE-754 leaves the sign and
/// payload of an arithmetic NaN unspecified, and x86 NaN propagation
/// picks one operand's bits depending on instruction operand order —
/// which legitimately differs between the expression-tree walker and the
/// linearized tape. Once an enclosure bound is NaN the run has left the
/// bounded domain either way; the contract is that both engines agree it
/// did.
bool sameBits(double A, double B) {
  return bitsOf(A) == bitsOf(B) || (std::isnan(A) && std::isnan(B));
}

std::string fmt(double X) {
  std::ostringstream OS;
  OS.precision(17);
  OS << X;
  return OS.str();
}

std::vector<double> argValuesOr(const OracleOptions &O) {
  if (!O.ArgValues.empty())
    return O.ArgValues;
  // Mixed signs and magnitudes; small enough that polynomial kernels
  // stay finite, large enough to exercise cancellation.
  return {0.5, 1.5, -0.75, 2.25, -3.0, 0.125};
}

core::InterpreterOptions interpOpts(const OracleOptions &O,
                                    bool WithShadows) {
  core::InterpreterOptions Opts;
  Opts.StepBudget = O.StepBudget;
  if (WithShadows)
    Opts.ShadowDirs = O.ShadowDirs;
  return Opts;
}

std::vector<core::Value>
buildArgs(const frontend::FunctionDecl *F, const std::vector<double> &Vals,
          const std::vector<double> &Dirs) {
  std::vector<core::Value> Args;
  for (size_t I = 0; I < F->getParams().size(); ++I) {
    double V = Vals[I % Vals.size()];
    const frontend::Type *T = F->getParams()[I]->getType();
    Args.push_back(Dirs.empty()
                       ? core::Interpreter::makeDefaultArg(T, V)
                       : core::Interpreter::makeShadowArg(T, V, Dirs));
  }
  return Args;
}

/// One interpreted run under \p Cfg; fills Lo/Hi (NaN when the return
/// value is not affine or the run failed). Returns false on interpreter
/// error (reported via Error).
bool runOnce(const frontend::TranslationUnit &TU, const std::string &Fn,
             const aa::AAConfig &Cfg, const OracleOptions &O,
             bool WithShadows, double &Lo, double &Hi,
             core::ShadowPtr &Sh, std::string &Error,
             core::ExecEngine Engine = core::ExecEngine::Auto,
             bool *UsedTape = nullptr) {
  Lo = Hi = std::nan("");
  Sh = nullptr;
  fp::RoundUpwardScope Round;
  aa::AffineEnvScope Env(Cfg);
  const frontend::FunctionDecl *F = TU.findFunction(Fn);
  core::InterpreterOptions Opts =
      interpOpts(O, WithShadows);
  Opts.Engine = Engine;
  core::Interpreter Interp(TU, Opts);
  core::InterpResult R = Interp.call(
      Fn, buildArgs(F, argValuesOr(O), Opts.ShadowDirs));
  if (UsedTape)
    *UsedTape = R.UsedTape;
  if (!R.Success) {
    Error = R.Error;
    return false;
  }
  if (R.ReturnValue.isAffine()) {
    ia::Interval I = R.ReturnValue.asAffine().toInterval();
    Lo = I.Lo;
    Hi = I.Hi;
    Sh = R.ReturnValue.shadow();
  } else if (R.ReturnValue.isInt()) {
    Lo = Hi = static_cast<double>(R.ReturnValue.asInt());
  }
  return true;
}

/// Applies the InjectShrink test hook to an enclosure.
void injectShrink(double Factor, double &Lo, double &Hi) {
  if (Factor <= 0.0 || std::isnan(Lo) || std::isnan(Hi))
    return;
  double Mid = 0.5 * (Lo + Hi);
  double R = (0.5 * (Hi - Lo)) * (1.0 - Factor);
  Lo = Mid - R;
  Hi = Mid + R;
}

Verdict fail(std::string Kind, std::string Config, std::string Detail) {
  Verdict V;
  V.Ok = false;
  V.Kind = std::move(Kind);
  V.Config = std::move(Config);
  V.Detail = std::move(Detail);
  return V;
}

} // namespace

Verdict fuzz::checkKernelSource(const std::string &Source,
                                const OracleOptions &O,
                                const std::string &Fn) {
  auto CU = frontend::parseSource("kernel.c", Source);
  if (!CU->Success)
    return fail("frontend", "",
                "generated kernel does not parse: " + CU->Diags.renderAll());
  const frontend::TranslationUnit &TU = CU->Ctx->tu();
  if (!TU.findFunction(Fn))
    return fail("frontend", "", "kernel function '" + Fn + "' missing");

  // Partition the grid: the 16-bit formats cannot run through the F64a
  // tree walker (or its shadow execution) and get their own tape-based
  // pass below; everything else goes through the historical passes
  // unchanged.
  std::vector<aa::AAConfig> AllConfigs =
      O.Configs.empty() ? defaultConfigGrid() : O.Configs;
  std::vector<aa::AAConfig> Configs, NarrowConfigs;
  for (const aa::AAConfig &Cfg : AllConfigs)
    (Cfg.Precision == aa::Format::F16 || Cfg.Precision == aa::Format::BF16
         ? NarrowConfigs
         : Configs)
        .push_back(Cfg);

  // The default grid is scalar-only; the SIMD path must be just as
  // sound, so containment also runs the vectorized twin of every
  // eligible configuration. Explicit O.Configs are taken verbatim
  // (minimization narrows to the one failing config, vectorized or not).
  std::vector<aa::AAConfig> ContainConfigs = Configs;
  if (O.Configs.empty())
    for (const aa::AAConfig &Cfg : Configs)
      if (Cfg.Placement == aa::PlacementPolicy::DirectMapped &&
          Cfg.K % 4 == 0) {
        aa::AAConfig Vec = Cfg;
        Vec.Vectorize = true;
        ContainConfigs.push_back(Vec);
      }

  for (const aa::AAConfig &Cfg : ContainConfigs) {
    double Lo, Hi;
    core::ShadowPtr Sh;
    std::string Error;
    if (!runOnce(TU, Fn, Cfg, O, /*WithShadows=*/true, Lo, Hi, Sh, Error))
      continue; // runtime-limit errors are not soundness findings
    if (!Sh)
      continue; // non-FP result, or provenance lost: nothing to check
    injectShrink(O.InjectShrink, Lo, Hi);
    core::ContainmentReport R = core::checkContainment(Lo, Hi, *Sh);
    if (R.Violation)
      return fail("containment", Cfg.str(),
                  "AA enclosure [" + fmt(Lo) + ", " + fmt(Hi) + "] vs " +
                      R.str());
  }

  // The 16-bit format pass: f16a/bf16a run on the format-generic scalar
  // tape (the tree walker and its shadows are F64a-only). When the tape
  // has no FCmp/FTruthy opcode the executed trace cannot depend on the
  // numeric format — integer control flow is format-independent — so the
  // F64 run's shadow samples still enclose the exact real results of the
  // narrow trace, giving the same zero-false-positive containment
  // oracle. Kernels with FP-dependent control flow are skipped here
  // (their narrow trace may branch differently). Each config is also run
  // under the probabilistic error model: its support and quantile
  // interval must sit inside the sound bound of the same trace.
  if (!NarrowConfigs.empty()) {
    const frontend::FunctionDecl *F = TU.findFunction(Fn);
    core::TapeCompileOptions TO;
    std::optional<core::Tape> T = core::compileToTape(F, TO);
    bool FpControl = false;
    if (T)
      for (const core::TapeInst &In : T->Code)
        if (In.Op == core::TapeOpcode::FCmp ||
            In.Op == core::TapeOpcode::FTruthy)
          FpControl = true;
    if (T && !FpControl) {
      std::vector<double> Vals = argValuesOr(O);
      std::vector<double> Seeds;
      for (size_t P = 0; P < F->getParams().size(); ++P)
        Seeds.push_back(Vals[P % Vals.size()]);
      for (const aa::AAConfig &Cfg : NarrowConfigs) {
        // Shadow reference: the same trace interpreted at F64 precision.
        aa::AAConfig RefCfg = Cfg;
        RefCfg.Precision = aa::Format::F64;
        double RLo, RHi;
        core::ShadowPtr Sh;
        std::string Error;
        if (!runOnce(TU, Fn, RefCfg, O, /*WithShadows=*/true, RLo, RHi, Sh,
                     Error))
          continue; // runtime-limit errors are not soundness findings
        if (!Sh)
          continue; // non-FP result: nothing to check
        core::InterpreterOptions Opts = interpOpts(O, false);
        auto RS = core::Interpreter::runBatch(TU, Fn, Cfg, {Seeds},
                                              /*Threads=*/1, Opts);
        if (!RS[0].Success)
          continue;
        double Lo = RS[0].Return.Lo, Hi = RS[0].Return.Hi;
        injectShrink(O.InjectShrink, Lo, Hi);
        core::ContainmentReport R = core::checkContainment(Lo, Hi, *Sh);
        if (R.Violation)
          return fail("narrow-containment", Cfg.str(),
                      "AA enclosure [" + fmt(Lo) + ", " + fmt(Hi) + "] vs " +
                          R.str());
        // Narrow formats under --engine=native fall back to the tape's
        // format-generic scalar executor; assert the dispatch preserves
        // strict bit-identity rather than assume it.
        core::InterpreterOptions NatOpts = interpOpts(O, false);
        NatOpts.Engine = core::ExecEngine::Native;
        auto NS = core::Interpreter::runBatch(TU, Fn, Cfg, {Seeds},
                                              /*Threads=*/1, NatOpts);
        if (NS[0].Success != RS[0].Success ||
            !sameBits(NS[0].Return.Lo, RS[0].Return.Lo) ||
            !sameBits(NS[0].Return.Hi, RS[0].Return.Hi))
          return fail("native-identity", Cfg.str(),
                      "narrow-format native enclosure [" +
                          fmt(NS[0].Return.Lo) + ", " + fmt(NS[0].Return.Hi) +
                          "] is not bit-identical to the tape engine's [" +
                          fmt(RS[0].Return.Lo) + ", " + fmt(RS[0].Return.Hi) +
                          "]");
        // The 16-bit formats batch through the format-generic scalar
        // tape, whose per-instance scatter/gather is storage-mode aware:
        // the sparse twin must reproduce the dense enclosure bit for bit.
        aa::AAConfig SCfg = Cfg;
        SCfg.Sparse = true;
        auto SS = core::Interpreter::runBatch(TU, Fn, SCfg, {Seeds},
                                              /*Threads=*/1, Opts);
        if (SS[0].Success != RS[0].Success ||
            !sameBits(SS[0].Return.Lo, RS[0].Return.Lo) ||
            !sameBits(SS[0].Return.Hi, RS[0].Return.Hi))
          return fail("sparse-identity", Cfg.str(),
                      "narrow-format sparse enclosure [" +
                          fmt(SS[0].Return.Lo) + ", " + fmt(SS[0].Return.Hi) +
                          "] is not bit-identical to dense storage's [" +
                          fmt(RS[0].Return.Lo) + ", " + fmt(RS[0].Return.Hi) +
                          "]");
        aa::AAConfig PCfg = Cfg;
        PCfg.Model = aa::ErrorModel::Probabilistic;
        auto PS = core::Interpreter::runBatch(TU, Fn, PCfg, {Seeds},
                                              /*Threads=*/1, Opts);
        if (!PS[0].Success)
          continue;
        if (!PS[0].HasProb || !PS[0].Prob.Valid)
          return fail("prob-support", Cfg.str(),
                      "probabilistic run produced no enclosure");
        const aa::ProbEnclosure &P = PS[0].Prob;
        double SLo = PS[0].Return.Lo, SHi = PS[0].Return.Hi;
        if (!std::isnan(SLo) && !std::isnan(SHi) &&
            (P.SupportLo < SLo || P.SupportHi > SHi ||
             P.Lo < P.SupportLo || P.Hi > P.SupportHi || P.Lo > P.Hi))
          return fail("prob-support", Cfg.str(),
                      "probabilistic enclosure [" + fmt(P.Lo) + ", " +
                          fmt(P.Hi) + "] / support [" + fmt(P.SupportLo) +
                          ", " + fmt(P.SupportHi) +
                          "] escapes the sound bound [" + fmt(SLo) + ", " +
                          fmt(SHi) + "]");
        auto NPS = core::Interpreter::runBatch(TU, Fn, PCfg, {Seeds},
                                               /*Threads=*/1, NatOpts);
        if (NPS[0].Success != PS[0].Success || !NPS[0].HasProb ||
            !sameBits(NPS[0].Return.Lo, PS[0].Return.Lo) ||
            !sameBits(NPS[0].Return.Hi, PS[0].Return.Hi) ||
            !sameBits(NPS[0].Prob.Lo, P.Lo) ||
            !sameBits(NPS[0].Prob.Hi, P.Hi) ||
            !sameBits(NPS[0].Prob.SupportLo, P.SupportLo) ||
            !sameBits(NPS[0].Prob.SupportHi, P.SupportHi))
          return fail("native-identity", PCfg.str(),
                      "probabilistic native run is not bit-identical to "
                      "the tape engine's");
      }
    }
  }

  if (!O.BitIdentity)
    return Verdict();

  // The AVX2 kernels accumulate the fresh-error coefficient in a
  // different order than the scalar code and are allowed to differ in
  // the last ulps (relative slack 2^-40 per op — the contract asserted
  // by tests/aa_simd_test.cpp); only the batch engine promises strict
  // bit-identity. Across a whole kernel we therefore compare enclosures
  // to within 2^-32 of their magnitude: enough headroom for per-op
  // accumulation slack, far below any real divergence bug (wrong slot,
  // dropped term). Random fusion consumes its RNG in engine-specific
  // order, so it is exempt from the comparison entirely (its vectorized
  // runs are still containment-checked above).
  for (const aa::AAConfig &Cfg : Configs) {
    if (Cfg.Placement != aa::PlacementPolicy::DirectMapped ||
        Cfg.Fusion == aa::FusionPolicy::Random || Cfg.K % 4 != 0 ||
        Cfg.Vectorize)
      continue;
    aa::AAConfig Vec = Cfg;
    Vec.Vectorize = true;
    double SLo, SHi, VLo, VHi;
    core::ShadowPtr Sh;
    std::string Error;
    if (!runOnce(TU, Fn, Cfg, O, false, SLo, SHi, Sh, Error) ||
        !runOnce(TU, Fn, Vec, O, false, VLo, VHi, Sh, Error))
      continue;
    // fmax ignores NaN, so Scale stays finite when one side is NaN and
    // the mismatch is still caught below.
    double Scale = std::fmax(std::fmax(std::fabs(SLo), std::fabs(SHi)),
                             std::fmax(std::fabs(VLo), std::fabs(VHi)));
    double Tol = Scale * 0x1p-32 + 0x1p-1000;
    auto Agrees = [Tol](double A, double B) {
      if (A == B) // equal finites and matching infinities (inf - inf
        return true; // is NaN, so the difference test can't see them)
      if (std::isnan(A) || std::isnan(B))
        return std::isnan(A) && std::isnan(B);
      return std::fabs(A - B) <= Tol;
    };
    if (!Agrees(SLo, VLo) || !Agrees(SHi, VHi))
      return fail("simd-identity", Vec.str(),
                  "vectorized enclosure [" + fmt(VLo) + ", " + fmt(VHi) +
                      "] diverges from scalar [" + fmt(SLo) + ", " +
                      fmt(SHi) + "] beyond last-ulp tolerance");
  }

  // The tape engine (core/Tape.h) replays the tree walker's exact
  // kernel-call and symbol-draw stream, so unlike the SIMD comparison it
  // promises strict bit-identity — under every placement/fusion/K
  // combination of the grid. The kernel generator's grammar is fully
  // inside the tape subset, so a compile fallback is itself a finding.
  for (const aa::AAConfig &Cfg : Configs) {
    double TLo, THi, PLo, PHi;
    core::ShadowPtr Sh;
    std::string TErr, PErr;
    bool UsedTape = false;
    bool TreeOk = runOnce(TU, Fn, Cfg, O, false, TLo, THi, Sh, TErr,
                          core::ExecEngine::Tree);
    bool TapeOk = runOnce(TU, Fn, Cfg, O, false, PLo, PHi, Sh, PErr,
                          core::ExecEngine::Tape, &UsedTape);
    if (!UsedTape)
      return fail("tape-identity", Cfg.str(),
                  "kernel did not compile to the tape engine");
    if (TreeOk != TapeOk)
      return fail("tape-identity", Cfg.str(),
                  std::string("tape run ") +
                      (TapeOk ? "succeeded" : "failed") +
                      " where the tree walker " +
                      (TreeOk ? "succeeded" : "failed") + " (" +
                      (TapeOk ? TErr : PErr) + ")");
    if (TreeOk && (!sameBits(TLo, PLo) || !sameBits(THi, PHi)))
      return fail("tape-identity", Cfg.str(),
                  "tape enclosure [" + fmt(PLo) + ", " + fmt(PHi) +
                      "] is not bit-identical to the tree walker's [" +
                      fmt(TLo) + ", " + fmt(THi) + "]");
    // Scalar calls under --engine=native run the shared tape VM; the
    // engine contract still promises strict bit-identity, so check it
    // rather than assume the dispatch is wired correctly.
    double NLo, NHi;
    std::string NErr;
    bool NUsedTape = false;
    bool NatOk = runOnce(TU, Fn, Cfg, O, false, NLo, NHi, Sh, NErr,
                         core::ExecEngine::Native, &NUsedTape);
    if (!NUsedTape)
      return fail("native-identity", Cfg.str(),
                  "kernel did not compile under the native engine");
    if (TapeOk != NatOk)
      return fail("native-identity", Cfg.str(),
                  std::string("native run ") +
                      (NatOk ? "succeeded" : "failed") +
                      " where the tape engine " +
                      (TapeOk ? "succeeded" : "failed") + " (" +
                      (NatOk ? PErr : NErr) + ")");
    if (TapeOk && (!sameBits(PLo, NLo) || !sameBits(PHi, NHi)))
      return fail("native-identity", Cfg.str(),
                  "native enclosure [" + fmt(NLo) + ", " + fmt(NHi) +
                      "] is not bit-identical to the tape engine's [" +
                      fmt(PLo) + ", " + fmt(PHi) + "]");
  }

  // The batched compiled engines (tape: column execution, native: the
  // AOT superblock — both with per-instance scalar fallback on
  // divergence) must match the serial tree batch bit for bit, serial
  // and threaded alike.
  for (const aa::AAConfig &Cfg : Configs) {
    std::vector<double> Vals = argValuesOr(O);
    const frontend::FunctionDecl *F = TU.findFunction(Fn);
    size_t NP = F->getParams().size();
    std::vector<std::vector<double>> Instances;
    for (unsigned Inst = 0; Inst < 4; ++Inst) {
      std::vector<double> Seeds;
      for (size_t P = 0; P < NP; ++P)
        Seeds.push_back(Vals[(P + Inst) % Vals.size()]);
      Instances.push_back(std::move(Seeds));
    }
    core::InterpreterOptions TreeOpts = interpOpts(O, false);
    TreeOpts.Engine = core::ExecEngine::Tree;
    auto Ref = core::Interpreter::runBatch(TU, Fn, Cfg, Instances,
                                           /*Threads=*/1, TreeOpts);
    for (core::ExecEngine Eng :
         {core::ExecEngine::Tape, core::ExecEngine::Native}) {
      const bool Nat = Eng == core::ExecEngine::Native;
      const char *Kind = Nat ? "native-identity" : "tape-identity";
      const char *Name = Nat ? "native" : "tape";
      core::InterpreterOptions EngOpts = interpOpts(O, false);
      EngOpts.Engine = Eng;
      for (unsigned Threads : {1u, 3u}) {
        auto Got = core::Interpreter::runBatch(TU, Fn, Cfg, Instances,
                                               Threads, EngOpts);
        for (size_t I = 0; I < Ref.size(); ++I) {
          if (!Got[I].UsedTape)
            return fail(Kind, Cfg.str(),
                        "batch instance " + std::to_string(I) +
                            " fell back to the tree walker");
          if (Ref[I].Success != Got[I].Success)
            return fail(Kind, Cfg.str(),
                        "batch instance " + std::to_string(I) +
                            " success differs between " + Name + " (" +
                            std::to_string(Threads) +
                            " thread(s)) and the tree walker");
          if (!Ref[I].Success)
            continue;
          if (!sameBits(Ref[I].Return.Lo, Got[I].Return.Lo) ||
              !sameBits(Ref[I].Return.Hi, Got[I].Return.Hi))
            return fail(Kind, Cfg.str(),
                        "batch instance " + std::to_string(I) + " " + Name +
                            " enclosure (" + std::to_string(Threads) +
                            " thread(s)) is not bit-identical to the tree "
                            "walker's");
        }
      }
    }
  }

  // The group-sparse storage mode (--sparse) promises strict bit-identity
  // to dense storage by construction: every skipped (slot, group) pair
  // contributes the exact +0 the dense kernel would have accumulated.
  // Enforce it across the full placement x fusion x K grid and both
  // batched compiled engines, serial and threaded. Direct-mapped configs
  // additionally run at K = 72 and 128 so the adaptive row pool's growth
  // schedule (16 -> 32 -> 64 -> K) relocates planes mid-kernel; the grid
  // itself tops out at K = 40. The probabilistic error model rides along
  // on the tape engine — its enclosure must match bit for bit too.
  for (const aa::AAConfig &Base : Configs) {
    std::vector<aa::AAConfig> Variants = {Base};
    if (Base.Placement == aa::PlacementPolicy::DirectMapped &&
        Base.Fusion == aa::FusionPolicy::Smallest)
      for (int BigK : {72, 128}) {
        aa::AAConfig Big = Base;
        Big.K = BigK;
        Variants.push_back(Big);
      }
    for (const aa::AAConfig &Cfg : Variants) {
      std::vector<double> Vals = argValuesOr(O);
      const frontend::FunctionDecl *F = TU.findFunction(Fn);
      size_t NP = F->getParams().size();
      std::vector<std::vector<double>> Instances;
      for (unsigned Inst = 0; Inst < 4; ++Inst) {
        std::vector<double> Seeds;
        for (size_t P = 0; P < NP; ++P)
          Seeds.push_back(Vals[(P + Inst) % Vals.size()]);
        Instances.push_back(std::move(Seeds));
      }
      aa::AAConfig Sparse = Cfg;
      Sparse.Sparse = true;
      core::InterpreterOptions TapeOpts = interpOpts(O, false);
      TapeOpts.Engine = core::ExecEngine::Tape;
      auto Ref = core::Interpreter::runBatch(TU, Fn, Cfg, Instances,
                                             /*Threads=*/1, TapeOpts);
      for (core::ExecEngine Eng :
           {core::ExecEngine::Tape, core::ExecEngine::Native}) {
        core::InterpreterOptions EngOpts = interpOpts(O, false);
        EngOpts.Engine = Eng;
        const char *Name = Eng == core::ExecEngine::Native ? "native" : "tape";
        for (unsigned Threads : {1u, 3u}) {
          auto Got = core::Interpreter::runBatch(TU, Fn, Sparse, Instances,
                                                 Threads, EngOpts);
          for (size_t I = 0; I < Ref.size(); ++I) {
            if (Ref[I].Success != Got[I].Success)
              return fail("sparse-identity", Cfg.str(),
                          "batch instance " + std::to_string(I) +
                              " success differs between sparse " + Name +
                              " (" + std::to_string(Threads) +
                              " thread(s), K=" + std::to_string(Cfg.K) +
                              ") and dense tape");
            if (!Ref[I].Success)
              continue;
            if (!sameBits(Ref[I].Return.Lo, Got[I].Return.Lo) ||
                !sameBits(Ref[I].Return.Hi, Got[I].Return.Hi))
              return fail("sparse-identity", Cfg.str(),
                          "batch instance " + std::to_string(I) +
                              " sparse " + Name + " enclosure (" +
                              std::to_string(Threads) +
                              " thread(s), K=" + std::to_string(Cfg.K) +
                              ") is not bit-identical to dense storage");
          }
        }
      }
      // Probabilistic model, tape engine: the sparse run must reproduce
      // the dense probabilistic enclosure bit for bit as well.
      aa::AAConfig PDense = Cfg, PSparse = Sparse;
      PDense.Model = aa::ErrorModel::Probabilistic;
      PSparse.Model = aa::ErrorModel::Probabilistic;
      auto PRef = core::Interpreter::runBatch(TU, Fn, PDense, Instances,
                                              /*Threads=*/1, TapeOpts);
      auto PGot = core::Interpreter::runBatch(TU, Fn, PSparse, Instances,
                                              /*Threads=*/1, TapeOpts);
      for (size_t I = 0; I < PRef.size(); ++I) {
        if (PRef[I].Success != PGot[I].Success)
          return fail("sparse-identity", PDense.str(),
                      "batch instance " + std::to_string(I) +
                          " probabilistic success differs between sparse "
                          "and dense storage");
        if (!PRef[I].Success)
          continue;
        if (!sameBits(PRef[I].Return.Lo, PGot[I].Return.Lo) ||
            !sameBits(PRef[I].Return.Hi, PGot[I].Return.Hi) ||
            PRef[I].HasProb != PGot[I].HasProb ||
            (PRef[I].HasProb &&
             (!sameBits(PRef[I].Prob.Lo, PGot[I].Prob.Lo) ||
              !sameBits(PRef[I].Prob.Hi, PGot[I].Prob.Hi) ||
              !sameBits(PRef[I].Prob.SupportLo, PGot[I].Prob.SupportLo) ||
              !sameBits(PRef[I].Prob.SupportHi, PGot[I].Prob.SupportHi))))
          return fail("sparse-identity", PDense.str(),
                      "batch instance " + std::to_string(I) +
                          " probabilistic enclosure differs between sparse "
                          "and dense storage");
      }
    }
  }

  // The threaded batch driver promises results identical to a serial
  // run, instance by instance. (Skipped when the grid was narrowed to
  // 16-bit configs only — those already batch through the tape pass.)
  if (!Configs.empty()) {
    aa::AAConfig Cfg = Configs.front();
    std::vector<double> Vals = argValuesOr(O);
    const frontend::FunctionDecl *F = TU.findFunction(Fn);
    size_t NP = F->getParams().size();
    std::vector<std::vector<double>> Instances;
    for (unsigned Inst = 0; Inst < 4; ++Inst) {
      std::vector<double> Seeds;
      for (size_t P = 0; P < NP; ++P)
        Seeds.push_back(Vals[(P + Inst) % Vals.size()]);
      Instances.push_back(std::move(Seeds));
    }
    core::InterpreterOptions Opts = interpOpts(O, false);
    auto Serial = core::Interpreter::runBatch(TU, Fn, Cfg, Instances,
                                              /*Threads=*/1, Opts);
    auto Threaded = core::Interpreter::runBatch(TU, Fn, Cfg, Instances,
                                                /*Threads=*/3, Opts);
    for (size_t I = 0; I < Serial.size(); ++I) {
      if (Serial[I].Success != Threaded[I].Success)
        return fail("bit-identity", Cfg.str(),
                    "batch instance " + std::to_string(I) +
                        " success differs between 1 and 3 threads");
      if (!Serial[I].Success)
        continue;
      if (!sameBits(Serial[I].Return.Lo, Threaded[I].Return.Lo) ||
          !sameBits(Serial[I].Return.Hi, Threaded[I].Return.Hi))
        return fail("bit-identity", Cfg.str(),
                    "batch instance " + std::to_string(I) +
                        " enclosure differs between 1 and 3 threads");
    }
  }

  // The safegend evaluation service promises responses bit-identical to
  // the offline driver. Its evaluation path is KernelCache::acquire (one
  // compile, shared artifact) + runBatchCompiled per drain round — spot
  // check that path here, without sockets: the same cached artifact must
  // reproduce a fresh Interpreter::runBatch bit for bit on repeated
  // evaluations and across both compiled engines.
  if (!Configs.empty()) {
    aa::AAConfig Cfg = Configs.front();
    std::vector<double> Vals = argValuesOr(O);
    const frontend::FunctionDecl *F = TU.findFunction(Fn);
    size_t NP = F->getParams().size();
    std::vector<std::vector<double>> Instances;
    for (unsigned Inst = 0; Inst < 3; ++Inst) {
      std::vector<double> Seeds;
      for (size_t P = 0; P < NP; ++P)
        Seeds.push_back(Vals[(P + Inst) % Vals.size()]);
      Instances.push_back(std::move(Seeds));
    }
    service::KernelCache Cache(4);
    service::CacheKey Key{service::wire::fnv1a64(Source), Cfg.str(), Fn};
    for (core::ExecEngine Eng :
         {core::ExecEngine::Tape, core::ExecEngine::Native}) {
      core::InterpreterOptions Opts = interpOpts(O, false);
      Opts.Engine = Eng;
      const char *Name = Eng == core::ExecEngine::Native ? "native" : "tape";
      auto Ref = core::Interpreter::runBatch(TU, Fn, Cfg, Instances,
                                             /*Threads=*/1, Opts);
      std::shared_ptr<service::CacheEntry> E =
          Cache.acquire(Key, &Source, Opts);
      if (!E || E->failed())
        return fail("service-identity", Cfg.str(),
                    "KernelCache failed to compile a kernel the "
                    "interpreter accepts" +
                        (E ? ": " + E->Error : std::string()));
      for (int Round = 0; Round < 2; ++Round) {
        auto Got = core::runBatchCompiled(E->CU->Ctx->tu(), E->Fn, Cfg,
                                          Instances, /*Threads=*/1, Opts);
        for (size_t I = 0; I < Ref.size(); ++I) {
          if (Ref[I].Success != Got[I].Success ||
              (Ref[I].Success &&
               (!sameBits(Ref[I].Return.Lo, Got[I].Return.Lo) ||
                !sameBits(Ref[I].Return.Hi, Got[I].Return.Hi))))
            return fail("service-identity", Cfg.str(),
                        "cached-artifact " + std::string(Name) +
                            " evaluation round " + std::to_string(Round) +
                            " instance " + std::to_string(I) +
                            " is not bit-identical to a fresh runBatch");
        }
      }
    }
    if (Cache.compiles() != 1)
      return fail("service-identity", Cfg.str(),
                  "artifact recompiled on a warm key: " +
                      std::to_string(Cache.compiles()) + " compiles");
  }

  return Verdict();
}

Verdict fuzz::checkKernel(const Kernel &K, const OracleOptions &O) {
  return checkKernelSource(renderKernel(K), O);
}

//===----------------------------------------------------------------------===//
// Minimization
//===----------------------------------------------------------------------===//

namespace {

/// Collects every expression slot of a kernel in deterministic order so
/// the minimizer can address subtrees positionally across clones.
void collectExprSlots(std::vector<KStmt> &Stmts,
                      std::vector<KExprPtr *> &Out);

void collectExprSlots(KExprPtr &E, std::vector<KExprPtr *> &Out) {
  Out.push_back(&E);
  for (KExprPtr &Kid : E->Kids)
    collectExprSlots(Kid, Out);
}

void collectExprSlots(std::vector<KStmt> &Stmts,
                      std::vector<KExprPtr *> &Out) {
  for (KStmt &S : Stmts) {
    if (S.Rhs)
      collectExprSlots(S.Rhs, Out);
    if (S.CondL)
      collectExprSlots(S.CondL, Out);
    if (S.CondR)
      collectExprSlots(S.CondR, Out);
    collectExprSlots(S.Body, Out);
    collectExprSlots(S.Else, Out);
  }
}

std::vector<KExprPtr *> collectExprSlots(Kernel &K) {
  std::vector<KExprPtr *> Out;
  for (KExprPtr &E : K.LocalInits)
    collectExprSlots(E, Out);
  collectExprSlots(K.Stmts, Out);
  if (K.Ret)
    collectExprSlots(K.Ret, Out);
  return Out;
}

/// Addresses a statement inside a (possibly nested) statement list by a
/// path of indices; the last path entry indexes the final list. Body
/// lists are walked before Else lists.
std::vector<KStmt> *resolveStmtList(Kernel &K,
                                    const std::vector<unsigned> &Path) {
  std::vector<KStmt> *List = &K.Stmts;
  for (size_t I = 0; I + 1 < Path.size(); ++I) {
    unsigned Idx = Path[I];
    KStmt &S = (*List)[Idx / 2];
    List = (Idx % 2 == 0) ? &S.Body : &S.Else;
  }
  return List;
}

/// Enumerates (path, index) pairs of all statements, outermost first.
void enumerateStmts(std::vector<KStmt> &List, std::vector<unsigned> &Prefix,
                    std::vector<std::vector<unsigned>> &Out) {
  for (unsigned I = 0; I < List.size(); ++I) {
    Prefix.push_back(I);
    Out.push_back(Prefix);
    Prefix.pop_back();
    // Children: encode "which list" in the path as 2*index (+1 for Else).
    Prefix.push_back(2 * I);
    enumerateStmts(List[I].Body, Prefix, Out);
    Prefix.pop_back();
    Prefix.push_back(2 * I + 1);
    enumerateStmts(List[I].Else, Prefix, Out);
    Prefix.pop_back();
  }
}

std::vector<std::vector<unsigned>> enumerateStmts(Kernel &K) {
  std::vector<std::vector<unsigned>> Out;
  std::vector<unsigned> Prefix;
  enumerateStmts(K.Stmts, Prefix, Out);
  return Out;
}

class Minimizer {
public:
  Minimizer(const Kernel &K, const OracleOptions &O, std::string Kind)
      : Current(K.clone()), O(O), Kind(std::move(Kind)) {}

  Kernel run(unsigned MaxRounds) {
    for (unsigned Round = 0; Round < MaxRounds; ++Round) {
      bool Changed = false;
      Changed |= shrinkStmts();
      Changed |= shrinkExprs();
      Changed |= shrinkInits();
      Changed |= pruneDecls();
      if (!Changed)
        break;
    }
    return std::move(Current);
  }

private:
  bool stillFails(const Kernel &K) {
    Verdict V = checkKernel(K, O);
    return !V.Ok && V.Kind == Kind;
  }

  bool adopt(Kernel &&Cand) {
    if (!stillFails(Cand))
      return false;
    Current = std::move(Cand);
    return true;
  }

  /// Statement-level shrinks: drop a statement; splice a loop or branch
  /// body in place of the construct; drop an else; set trips to 1.
  bool shrinkStmts() {
    bool Changed = false;
    bool Progress = true;
    while (Progress) {
      Progress = false;
      auto Paths = enumerateStmts(Current);
      for (const auto &Path : Paths) {
        // 1) Remove outright.
        {
          Kernel Cand = Current.clone();
          std::vector<KStmt> *List = resolveStmtList(Cand, Path);
          List->erase(List->begin() + Path.back());
          if (adopt(std::move(Cand))) {
            Progress = Changed = true;
            break; // paths are stale; re-enumerate
          }
        }
        // 2) Structural simplifications of the statement itself.
        std::vector<KStmt> *List = resolveStmtList(Current, Path);
        KStmt &S = (*List)[Path.back()];
        if (S.K == KStmt::Kind::Loop) {
          Kernel Cand = Current.clone();
          std::vector<KStmt> *CL = resolveStmtList(Cand, Path);
          KStmt Loop = std::move((*CL)[Path.back()]);
          CL->erase(CL->begin() + Path.back());
          CL->insert(CL->begin() + Path.back(),
                     std::make_move_iterator(Loop.Body.begin()),
                     std::make_move_iterator(Loop.Body.end()));
          if (adopt(std::move(Cand))) {
            Progress = Changed = true;
            break;
          }
          if (S.Trip > 1) {
            Kernel Cand2 = Current.clone();
            (*resolveStmtList(Cand2, Path))[Path.back()].Trip = 1;
            if (adopt(std::move(Cand2)))
              Progress = Changed = true;
          }
        } else if (S.K == KStmt::Kind::If) {
          for (bool UseElse : {false, true}) {
            const std::vector<KStmt> &Src = UseElse ? S.Else : S.Body;
            if (UseElse && Src.empty())
              continue;
            Kernel Cand = Current.clone();
            std::vector<KStmt> *CL = resolveStmtList(Cand, Path);
            KStmt If = std::move((*CL)[Path.back()]);
            CL->erase(CL->begin() + Path.back());
            std::vector<KStmt> &Repl = UseElse ? If.Else : If.Body;
            CL->insert(CL->begin() + Path.back(),
                       std::make_move_iterator(Repl.begin()),
                       std::make_move_iterator(Repl.end()));
            if (adopt(std::move(Cand))) {
              Progress = Changed = true;
              break;
            }
          }
          if (Progress)
            break;
          if (!S.Else.empty()) {
            Kernel Cand = Current.clone();
            (*resolveStmtList(Cand, Path))[Path.back()].Else.clear();
            if (adopt(std::move(Cand)))
              Progress = Changed = true;
          }
        }
        if (Progress)
          break;
      }
    }
    return Changed;
  }

  /// Expression shrinks: replace a subtree with 1.0, or hoist one of
  /// its children over it.
  bool shrinkExprs() {
    bool Changed = false;
    size_t Slot = 0;
    for (;;) {
      size_t NumSlots = collectExprSlots(Current).size();
      if (Slot >= NumSlots)
        break;
      bool Shrunk = false;
      size_t NumKids = (*collectExprSlots(Current)[Slot])->Kids.size();
      // Hoisting a child first keeps more structure than jumping to 1.0.
      for (size_t Kid = 0; Kid <= NumKids && !Shrunk; ++Kid) {
        Kernel Cand = Current.clone();
        KExprPtr *S = collectExprSlots(Cand)[Slot];
        if (Kid < NumKids)
          *S = std::move((*S)->Kids[Kid]);
        else if ((*S)->K != KExpr::Kind::Const)
          *S = makeConst(1.0);
        else
          continue;
        if (adopt(std::move(Cand)))
          Shrunk = Changed = true;
      }
      if (!Shrunk)
        ++Slot; // else: same slot again — it may shrink further
    }
    return Changed;
  }

  /// Removes declarations (and renumbers the survivors) once nothing
  /// references them, so reproducers read cleanly.
  bool pruneDecls() {
    bool Changed = false;
    for (unsigned I = static_cast<unsigned>(Current.LocalInits.size());
         I-- > 0;) {
      Kernel Cand = Current.clone();
      if (!dropLocal(Cand, I))
        continue;
      if (adopt(std::move(Cand)))
        Changed = true;
    }
    for (unsigned I = Current.NumArrays; I-- > 0;) {
      Kernel Cand = Current.clone();
      if (!dropArray(Cand, I))
        continue;
      if (adopt(std::move(Cand)))
        Changed = true;
    }
    return Changed;
  }

  /// Deletes local \p I if unreferenced; renumbers higher locals.
  /// Returns false (leaving \p K arbitrary) when the local is in use.
  static bool dropLocal(Kernel &K, unsigned I) {
    auto Slots = collectExprSlots(K);
    for (KExprPtr *S : Slots)
      if ((*S)->K == KExpr::Kind::Local && (*S)->Index == I)
        return false;
    if (!eraseStmtsTargeting(K.Stmts, KStmt::Kind::Assign, I))
      return false;
    K.LocalInits.erase(K.LocalInits.begin() + I);
    for (KExprPtr *S : collectExprSlots(K))
      if ((*S)->K == KExpr::Kind::Local && (*S)->Index > I)
        --(*S)->Index;
    renumberTargets(K.Stmts, KStmt::Kind::Assign, I);
    return true;
  }

  static bool dropArray(Kernel &K, unsigned I) {
    for (KExprPtr *S : collectExprSlots(K))
      if ((*S)->K == KExpr::Kind::ArrayLoad && (*S)->Index == I)
        return false;
    if (!eraseStmtsTargeting(K.Stmts, KStmt::Kind::ArrayStore, I))
      return false;
    --K.NumArrays;
    for (KExprPtr *S : collectExprSlots(K))
      if ((*S)->K == KExpr::Kind::ArrayLoad && (*S)->Index > I)
        --(*S)->Index;
    renumberTargets(K.Stmts, KStmt::Kind::ArrayStore, I);
    return true;
  }

  /// Erases writes to the dropped variable. Compound assignments read
  /// their target, but the reference scan above already rejected those
  /// kernels via the Rhs; plain and compound writes alike are dead once
  /// nothing reads the variable — except a compound divide, which can
  /// still influence control flow only through its own value; all our
  /// assignment statements discard it, so removal is safe. Returns
  /// false only on structural surprise.
  static bool eraseStmtsTargeting(std::vector<KStmt> &List, KStmt::Kind Kind,
                                  unsigned Target) {
    for (size_t I = List.size(); I-- > 0;) {
      KStmt &S = List[I];
      if (!eraseStmtsTargeting(S.Body, Kind, Target) ||
          !eraseStmtsTargeting(S.Else, Kind, Target))
        return false;
      if (S.K == Kind && S.Target == Target)
        List.erase(List.begin() + I);
    }
    return true;
  }

  static void renumberTargets(std::vector<KStmt> &List, KStmt::Kind Kind,
                              unsigned Removed) {
    for (KStmt &S : List) {
      if (S.K == Kind && S.Target > Removed)
        --S.Target;
      renumberTargets(S.Body, Kind, Removed);
      renumberTargets(S.Else, Kind, Removed);
    }
  }

  /// Local initializers that are no longer load-bearing become 1.0.
  bool shrinkInits() {
    bool Changed = false;
    for (size_t I = 0; I < Current.LocalInits.size(); ++I) {
      if (Current.LocalInits[I]->K == KExpr::Kind::Const)
        continue;
      Kernel Cand = Current.clone();
      Cand.LocalInits[I] = makeConst(1.0);
      if (adopt(std::move(Cand)))
        Changed = true;
    }
    return Changed;
  }

  Kernel Current;
  const OracleOptions &O;
  std::string Kind;
};

} // namespace

Kernel fuzz::minimizeKernel(const Kernel &K, const OracleOptions &O,
                            unsigned MaxRounds) {
  Verdict First = checkKernel(K, O);
  if (First.Ok)
    return K.clone();
  // Narrow the oracle to the failing configuration: minimization runs
  // hundreds of oracle calls, and one config reproduces the bug.
  OracleOptions Narrow = O;
  bool IdentityKind = First.Kind == "simd-identity" ||
                      First.Kind == "bit-identity" ||
                      First.Kind == "tape-identity" ||
                      First.Kind == "native-identity" ||
                      First.Kind == "sparse-identity";
  if (auto Cfg = aa::AAConfig::parse(First.Config)) {
    // Identity failures are reported with the vectorized twin's 'v'
    // notation, but the identity pass re-derives that twin from the
    // scalar config itself, so strip the flag back. A containment
    // failure on a vectorized run keeps its 'v' — the containment loop
    // runs explicit configs verbatim.
    if (IdentityKind)
      Cfg->Vectorize = false;
    Narrow.Configs = {*Cfg};
  }
  Narrow.BitIdentity = IdentityKind;
  return Minimizer(K, Narrow, First.Kind).run(MaxRounds);
}

//===----------------------------------------------------------------------===//
// Corpus
//===----------------------------------------------------------------------===//

std::string fuzz::reproducerFile(const Kernel &K, const OracleOptions &O,
                                 const Verdict &V, uint64_t Seed,
                                 uint64_t Iter) {
  std::ostringstream OS;
  OS << "// safegen-fuzz reproducer\n";
  OS << "// seed: " << Seed << " iter: " << Iter << "\n";
  OS << "// args:";
  for (double A : argValuesOr(O))
    OS << ' ' << fmt(A);
  OS << "\n";
  std::string Detail = V.Detail;
  for (char &C : Detail)
    if (C == '\n')
      C = ' ';
  OS << "// verdict: " << V.Kind << " config: " << V.Config << "\n";
  OS << "// detail: " << Detail << "\n";
  OS << renderKernel(K);
  return OS.str();
}

Verdict fuzz::replaySource(const std::string &Contents, OracleOptions Base) {
  std::istringstream IS(Contents);
  std::string Line;
  while (std::getline(IS, Line)) {
    const std::string Tag = "// args:";
    if (Line.compare(0, Tag.size(), Tag) == 0) {
      std::istringstream Args(Line.substr(Tag.size()));
      std::vector<double> Vals;
      double V;
      while (Args >> V)
        Vals.push_back(V);
      if (!Vals.empty())
        Base.ArgValues = std::move(Vals);
      break;
    }
  }
  return checkKernelSource(Contents, Base);
}
