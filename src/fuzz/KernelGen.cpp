//===- KernelGen.cpp ------------------------------------------------------===//
//
// Part of the SafeGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "fuzz/KernelGen.h"

#include "frontend/ASTPrinter.h"

#include <cassert>
#include <cmath>
#include <cstdio>

using namespace safegen;
using namespace safegen::fuzz;
using namespace safegen::frontend;

//===----------------------------------------------------------------------===//
// IR plumbing
//===----------------------------------------------------------------------===//

KExprPtr KExpr::clone() const {
  auto Out = std::make_unique<KExpr>();
  Out->K = K;
  Out->Value = Value;
  Out->Index = Index;
  Out->Elem = Elem;
  Out->Op = Op;
  Out->Callee = Callee;
  for (const KExprPtr &Kid : Kids)
    Out->Kids.push_back(Kid->clone());
  return Out;
}

size_t KExpr::size() const {
  size_t N = 1;
  for (const KExprPtr &Kid : Kids)
    N += Kid->size();
  return N;
}

KExprPtr fuzz::makeConst(double V) {
  auto E = std::make_unique<KExpr>();
  E->K = KExpr::Kind::Const;
  E->Value = V;
  return E;
}

KExprPtr fuzz::makeParam(unsigned I) {
  auto E = std::make_unique<KExpr>();
  E->K = KExpr::Kind::Param;
  E->Index = I;
  return E;
}

KExprPtr fuzz::makeLocal(unsigned I) {
  auto E = std::make_unique<KExpr>();
  E->K = KExpr::Kind::Local;
  E->Index = I;
  return E;
}

KExprPtr fuzz::makeBinary(BinaryOpKind Op, KExprPtr L, KExprPtr R) {
  auto E = std::make_unique<KExpr>();
  E->K = KExpr::Kind::Binary;
  E->Op = Op;
  E->Kids.push_back(std::move(L));
  E->Kids.push_back(std::move(R));
  return E;
}

KExprPtr fuzz::makeCall(std::string Callee, std::vector<KExprPtr> Args) {
  auto E = std::make_unique<KExpr>();
  E->K = KExpr::Kind::Call;
  E->Callee = std::move(Callee);
  E->Kids = std::move(Args);
  return E;
}

KStmt KStmt::clone() const {
  KStmt Out;
  Out.K = K;
  Out.Target = Target;
  Out.Elem = Elem;
  Out.Op = Op;
  Out.Rhs = Rhs ? Rhs->clone() : nullptr;
  Out.Trip = Trip;
  Out.CondL = CondL ? CondL->clone() : nullptr;
  Out.CondR = CondR ? CondR->clone() : nullptr;
  Out.Cmp = Cmp;
  for (const KStmt &S : Body)
    Out.Body.push_back(S.clone());
  for (const KStmt &S : Else)
    Out.Else.push_back(S.clone());
  return Out;
}

size_t KStmt::size() const {
  size_t N = 1;
  if (Rhs)
    N += Rhs->size();
  if (CondL)
    N += CondL->size();
  if (CondR)
    N += CondR->size();
  for (const KStmt &S : Body)
    N += S.size();
  for (const KStmt &S : Else)
    N += S.size();
  return N;
}

Kernel Kernel::clone() const {
  Kernel Out;
  Out.NumParams = NumParams;
  for (const KExprPtr &E : LocalInits)
    Out.LocalInits.push_back(E->clone());
  Out.NumArrays = NumArrays;
  for (const KStmt &S : Stmts)
    Out.Stmts.push_back(S.clone());
  Out.Ret = Ret ? Ret->clone() : nullptr;
  return Out;
}

size_t Kernel::size() const {
  size_t N = 0;
  for (const KExprPtr &E : LocalInits)
    N += E->size();
  for (const KStmt &S : Stmts)
    N += S.size();
  if (Ret)
    N += Ret->size();
  return N;
}

//===----------------------------------------------------------------------===//
// Random generation
//===----------------------------------------------------------------------===//

namespace {

/// What a random expression may reference at its generation site.
struct Scope {
  unsigned NumParams = 0;
  unsigned NumLocals = 0; ///< locals t0..t{NumLocals-1} are in scope
  unsigned NumArrays = 0;
};

class Gen {
public:
  Gen(std::mt19937_64 &Rng, const GenOptions &Opts) : Rng(Rng), Opts(Opts) {}

  Kernel run() {
    Kernel K;
    K.NumParams =
        Opts.MinParams + pick(Opts.MaxParams - Opts.MinParams + 1);
    unsigned NumLocals = 1 + pick(Opts.MaxLocals);
    K.NumArrays = pick(Opts.MaxArrays + 1);

    Scope Sc;
    Sc.NumParams = K.NumParams;
    Sc.NumArrays = K.NumArrays; // loads default-read 0.0 before a store
    for (unsigned I = 0; I < NumLocals; ++I) {
      Sc.NumLocals = I;
      K.LocalInits.push_back(expr(Sc, Opts.MaxDepth));
    }
    Sc.NumLocals = NumLocals;

    unsigned NumStmts = 1 + pick(Opts.MaxStmts);
    for (unsigned I = 0; I < NumStmts; ++I)
      K.Stmts.push_back(stmt(Sc, Opts.MaxNest));
    K.Ret = expr(Sc, Opts.MaxDepth);
    return K;
  }

private:
  unsigned pick(unsigned N) { return N ? static_cast<unsigned>(Rng() % N) : 0; }
  bool chance(unsigned Percent) { return Rng() % 100 < Percent; }

  double constant() {
    static const double Pool[] = {0.0, 0.5,  1.0, 1.5,    2.0,  3.0,
                                  0.1, 0.25, 4.0, 1e-6,   10.0, 100.0,
                                  3.141592653589793, 0.3333333333333333};
    if (chance(60))
      return Pool[pick(static_cast<unsigned>(std::size(Pool)))];
    // Uniform small magnitude; keeps most kernels numerically tame.
    return static_cast<double>(Rng() % 8192) / 2048.0;
  }

  KExprPtr leaf(const Scope &Sc) {
    // Leaf mix biased toward variables so dataflow stays connected.
    unsigned Total = Sc.NumParams + Sc.NumLocals +
                     (Sc.NumArrays ? 2u : 0u) + 2u;
    unsigned R = pick(Total);
    if (R < Sc.NumParams)
      return makeParam(R);
    R -= Sc.NumParams;
    if (R < Sc.NumLocals)
      return makeLocal(R);
    R -= Sc.NumLocals;
    if (Sc.NumArrays && R < 2) {
      auto E = std::make_unique<KExpr>();
      E->K = KExpr::Kind::ArrayLoad;
      E->Index = pick(Sc.NumArrays);
      E->Elem = pick(Kernel::ArrayLen);
      return E;
    }
    return makeConst(constant());
  }

  KExprPtr expr(const Scope &Sc, unsigned Depth) {
    if (Depth == 0 || chance(30))
      return leaf(Sc);
    unsigned R = pick(Opts.Nonlinear ? 10u : 6u);
    if (R < 5) {
      static const BinaryOpKind Ops[] = {BinaryOpKind::Add, BinaryOpKind::Add,
                                         BinaryOpKind::Sub, BinaryOpKind::Mul,
                                         BinaryOpKind::Mul};
      BinaryOpKind Op = Opts.Nonlinear && chance(15) ? BinaryOpKind::Div
                                                     : Ops[R];
      return makeBinary(Op, expr(Sc, Depth - 1), expr(Sc, Depth - 1));
    }
    if (R == 5) {
      auto E = std::make_unique<KExpr>();
      E->K = KExpr::Kind::Neg;
      E->Kids.push_back(expr(Sc, Depth - 1));
      return E;
    }
    // Nonlinear builtins. sqrt/log arguments are sometimes wrapped in
    // fabs so not every kernel collapses to Top, but raw domain
    // excursions stay reachable on purpose.
    static const char *Callees[] = {"sqrt", "fabs", "exp", "log",
                                    "sin",  "cos",  "fmax", "fmin"};
    const char *Callee = Callees[pick(8)];
    if (std::string(Callee) == "fmax" || std::string(Callee) == "fmin") {
      std::vector<KExprPtr> Args;
      Args.push_back(expr(Sc, Depth - 1));
      Args.push_back(expr(Sc, Depth - 1));
      return makeCall(Callee, std::move(Args));
    }
    KExprPtr Arg = expr(Sc, Depth - 1);
    if ((std::string(Callee) == "sqrt" || std::string(Callee) == "log") &&
        chance(50)) {
      std::vector<KExprPtr> Abs;
      Abs.push_back(std::move(Arg));
      Arg = makeCall("fabs", std::move(Abs));
      if (std::string(Callee) == "log")
        Arg = makeBinary(BinaryOpKind::Add, std::move(Arg), makeConst(0.5));
    }
    std::vector<KExprPtr> Args;
    Args.push_back(std::move(Arg));
    return makeCall(Callee, std::move(Args));
  }

  KStmt assign(const Scope &Sc) {
    KStmt S;
    if (Sc.NumArrays && chance(25)) {
      S.K = KStmt::Kind::ArrayStore;
      S.Target = pick(Sc.NumArrays);
      S.Elem = pick(Kernel::ArrayLen);
      S.Rhs = expr(Sc, Opts.MaxDepth);
      return S;
    }
    S.K = KStmt::Kind::Assign;
    S.Target = pick(Sc.NumLocals);
    static const AssignOpKind Ops[] = {
        AssignOpKind::Assign, AssignOpKind::Assign, AssignOpKind::AddAssign,
        AssignOpKind::SubAssign, AssignOpKind::MulAssign};
    S.Op = Ops[pick(5)];
    S.Rhs = expr(Sc, Opts.MaxDepth);
    return S;
  }

  KStmt stmt(const Scope &Sc, unsigned Nest) {
    unsigned R = pick(Nest ? 10u : 6u);
    if (R < 6 || Sc.NumLocals == 0)
      return assign(Sc);
    if (R < 8) {
      KStmt S;
      S.K = KStmt::Kind::Loop;
      S.Trip = 1 + pick(Opts.MaxTrip);
      unsigned N = 1 + pick(3);
      for (unsigned I = 0; I < N; ++I)
        S.Body.push_back(stmt(Sc, Nest - 1));
      return S;
    }
    KStmt S;
    S.K = KStmt::Kind::If;
    S.CondL = expr(Sc, 2);
    S.CondR = expr(Sc, 2);
    static const BinaryOpKind Cmps[] = {BinaryOpKind::Lt, BinaryOpKind::Gt,
                                        BinaryOpKind::Le, BinaryOpKind::Ge};
    S.Cmp = Cmps[pick(4)];
    unsigned N = 1 + pick(2);
    for (unsigned I = 0; I < N; ++I)
      S.Body.push_back(stmt(Sc, Nest - 1));
    if (chance(40)) {
      unsigned M = 1 + pick(2);
      for (unsigned I = 0; I < M; ++I)
        S.Else.push_back(stmt(Sc, Nest - 1));
    }
    return S;
  }

  std::mt19937_64 &Rng;
  const GenOptions &Opts;
};

} // namespace

Kernel fuzz::generateKernel(std::mt19937_64 &Rng, const GenOptions &Opts) {
  return Gen(Rng, Opts).run();
}

//===----------------------------------------------------------------------===//
// Rendering through the frontend AST
//===----------------------------------------------------------------------===//

std::string fuzz::floatSpelling(double V) {
  assert(V >= 0.0 && std::isfinite(V) && "negation is a Neg node");
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.17g", V);
  std::string S(Buf);
  if (S.find_first_of(".eE") == std::string::npos)
    S += ".0";
  return S;
}

namespace {

/// Builds frontend AST nodes for one kernel. The ASTContext outlives
/// only the printing; decl cross-links are by name, which is all the
/// printer (and a reparse) needs.
class Renderer {
public:
  explicit Renderer(ASTContext &Ctx) : Ctx(Ctx) {}

  FunctionDecl *function(const Kernel &K, const std::string &Name) {
    const Type *D = Ctx.types().getDouble();
    std::vector<VarDecl *> Params;
    for (unsigned I = 0; I < K.NumParams; ++I)
      Params.push_back(Ctx.create<VarDecl>("x" + std::to_string(I), D,
                                           nullptr, SourceLocation(),
                                           /*IsParam=*/true));
    std::vector<Stmt *> Body;
    // Arrays first: local initializers may load from them (reading the
    // interpreter's well-defined 0.0 default before any store).
    const Type *Arr = Ctx.types().getArray(D, Kernel::ArrayLen);
    for (unsigned I = 0; I < K.NumArrays; ++I) {
      VarDecl *V = Ctx.create<VarDecl>("a" + std::to_string(I), Arr, nullptr,
                                       SourceLocation());
      Body.push_back(Ctx.create<DeclStmt>(std::vector<VarDecl *>{V},
                                          SourceLocation()));
    }
    for (unsigned I = 0; I < K.LocalInits.size(); ++I) {
      VarDecl *V = Ctx.create<VarDecl>("t" + std::to_string(I), D,
                                       expr(*K.LocalInits[I]),
                                       SourceLocation());
      Body.push_back(Ctx.create<DeclStmt>(std::vector<VarDecl *>{V},
                                          SourceLocation()));
    }
    for (const KStmt &S : K.Stmts)
      Body.push_back(stmt(S));
    Body.push_back(Ctx.create<ReturnStmt>(expr(*K.Ret), SourceLocation()));
    CompoundStmt *BodyStmt =
        Ctx.create<CompoundStmt>(std::move(Body), SourceLocation());
    return Ctx.create<FunctionDecl>(Name, D, std::move(Params), BodyStmt,
                                    SourceLocation());
  }

private:
  Expr *ref(const std::string &Name) {
    return Ctx.create<DeclRefExpr>(nullptr, Ctx.types().getDouble(),
                                   SourceLocation(), Name);
  }

  Expr *expr(const KExpr &E) {
    const Type *D = Ctx.types().getDouble();
    switch (E.K) {
    case KExpr::Kind::Const:
      return Ctx.create<FloatLiteralExpr>(E.Value, floatSpelling(E.Value), D,
                                          SourceLocation());
    case KExpr::Kind::Param:
      return ref("x" + std::to_string(E.Index));
    case KExpr::Kind::Local:
      return ref("t" + std::to_string(E.Index));
    case KExpr::Kind::ArrayLoad:
      return Ctx.create<SubscriptExpr>(
          ref("a" + std::to_string(E.Index)),
          Ctx.create<IntLiteralExpr>(E.Elem, Ctx.types().getInt(),
                                     SourceLocation()),
          D, SourceLocation());
    case KExpr::Kind::Neg:
      // Parenthesize the operand: a nested negation would otherwise
      // print as "--e", which lexes as a decrement.
      return Ctx.create<UnaryExpr>(
          UnaryOpKind::Minus,
          Ctx.create<ParenExpr>(expr(*E.Kids[0]), SourceLocation()), D,
          SourceLocation());
    case KExpr::Kind::Binary:
      return Ctx.create<BinaryExpr>(E.Op, expr(*E.Kids[0]), expr(*E.Kids[1]),
                                    D, SourceLocation());
    case KExpr::Kind::Call: {
      std::vector<Expr *> Args;
      for (const KExprPtr &Kid : E.Kids)
        Args.push_back(expr(*Kid));
      return Ctx.create<CallExpr>(E.Callee, std::move(Args), D,
                                  SourceLocation());
    }
    }
    return nullptr;
  }

  Stmt *stmt(const KStmt &S) {
    switch (S.K) {
    case KStmt::Kind::Assign:
      return Ctx.create<ExprStmt>(
          Ctx.create<AssignExpr>(S.Op, ref("t" + std::to_string(S.Target)),
                                 expr(*S.Rhs), Ctx.types().getDouble(),
                                 SourceLocation()),
          SourceLocation());
    case KStmt::Kind::ArrayStore: {
      Expr *Lhs = Ctx.create<SubscriptExpr>(
          ref("a" + std::to_string(S.Target)),
          Ctx.create<IntLiteralExpr>(S.Elem, Ctx.types().getInt(),
                                     SourceLocation()),
          Ctx.types().getDouble(), SourceLocation());
      return Ctx.create<ExprStmt>(
          Ctx.create<AssignExpr>(AssignOpKind::Assign, Lhs, expr(*S.Rhs),
                                 Ctx.types().getDouble(), SourceLocation()),
          SourceLocation());
    }
    case KStmt::Kind::Loop: {
      std::string Iv = "i" + std::to_string(NextLoopVar++);
      const Type *IntTy = Ctx.types().getInt();
      VarDecl *V = Ctx.create<VarDecl>(
          Iv, IntTy,
          Ctx.create<IntLiteralExpr>(0, IntTy, SourceLocation()),
          SourceLocation());
      Stmt *Init = Ctx.create<DeclStmt>(std::vector<VarDecl *>{V},
                                        SourceLocation());
      Expr *Cond = Ctx.create<BinaryExpr>(
          BinaryOpKind::Lt, ref(Iv),
          Ctx.create<IntLiteralExpr>(S.Trip, IntTy, SourceLocation()), IntTy,
          SourceLocation());
      Expr *Inc = Ctx.create<UnaryExpr>(UnaryOpKind::PostInc, ref(Iv), IntTy,
                                        SourceLocation());
      return Ctx.create<ForStmt>(Init, Cond, Inc, compound(S.Body),
                                 SourceLocation());
    }
    case KStmt::Kind::If: {
      Expr *Cond = Ctx.create<BinaryExpr>(S.Cmp, expr(*S.CondL),
                                          expr(*S.CondR), Ctx.types().getInt(),
                                          SourceLocation());
      Stmt *Else = S.Else.empty() ? nullptr : compound(S.Else);
      return Ctx.create<IfStmt>(Cond, compound(S.Body), Else,
                                SourceLocation());
    }
    }
    return nullptr;
  }

  Stmt *compound(const std::vector<KStmt> &Stmts) {
    std::vector<Stmt *> Out;
    for (const KStmt &S : Stmts)
      Out.push_back(stmt(S));
    return Ctx.create<CompoundStmt>(std::move(Out), SourceLocation());
  }

  ASTContext &Ctx;
  unsigned NextLoopVar = 0;
};

} // namespace

std::string fuzz::renderKernel(const Kernel &K, const std::string &Name) {
  ASTContext Ctx;
  FunctionDecl *F = Renderer(Ctx).function(K, Name);
  ASTPrinter Printer;
  return Printer.print(F);
}
