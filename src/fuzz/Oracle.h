//===- Oracle.h - Differential soundness oracle -----------------*- C++ -*-===//
//
// Part of the SafeGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The containment oracle of the soundness fuzzer (DESIGN.md, "Soundness
/// fuzzing"). Each kernel is interpreted under every configuration of a
/// placement x fusion x K grid with high-precision shadow execution
/// enabled (core/Shadow.h): the shadow samples enclose the exact real
/// result of the executed trace, so an AA enclosure disjoint from any
/// sample proves a soundness violation — with zero false positives.
///
/// On top of the containment check, the oracle cross-checks determinism
/// promises: the threaded batch driver must produce bit-identical
/// enclosures to a serial run, the tape execution engine (core/Tape.h)
/// must be bit-identical to the tree walker under every configuration
/// of the grid (scalar and batched, serial and threaded), and the
/// vectorized kernels must agree with the scalar path to within the
/// last ulps (the AVX2 kernels may accumulate the fresh-error
/// coefficient in a different order — see tests/aa_simd_test.cpp for
/// the per-op contract).
///
/// The 16-bit formats (f16a/bf16a) get a dedicated pass: they execute on
/// the format-generic scalar tape, and for branch-free kernels (no
/// FCmp/FTruthy opcode) the F64 run's shadow samples remain a valid
/// containment reference, since the executed trace cannot depend on the
/// numeric format. Each narrow config additionally runs under the
/// probabilistic error model (aa/ErrorSemantics.h), whose support and
/// quantile interval must be contained in the sound bound of the same
/// trace.
///
/// A failing kernel is shrunk by a greedy minimizer (drop statements,
/// unroll loops, flatten branches, replace expression subtrees) until no
/// single mutation preserves the failure, and written to a replayable
/// corpus file.
///
//===----------------------------------------------------------------------===//

#ifndef SAFEGEN_FUZZ_ORACLE_H
#define SAFEGEN_FUZZ_ORACLE_H

#include "aa/Policy.h"
#include "fuzz/KernelGen.h"

#include <cstdint>
#include <string>
#include <vector>

namespace safegen {
namespace fuzz {

struct OracleOptions {
  /// Configurations to exercise; empty means defaultConfigGrid().
  std::vector<aa::AAConfig> Configs;
  /// Shadow sample directions in [-1, 1] (one IntervalDD sample each).
  std::vector<double> ShadowDirs = {-1.0, -0.5, 0.0, 0.5, 1.0};
  /// Numeric argument values, cycled over parameters; empty means a
  /// fixed default mix of signs and magnitudes.
  std::vector<double> ArgValues;
  /// Interpreter step budget per run (loops are bounded, so this only
  /// guards against pathological nesting).
  uint64_t StepBudget = 4'000'000;
  /// Also run the SIMD-vs-scalar, tape-vs-tree, and threaded-batch
  /// identity checks.
  bool BitIdentity = true;
  /// Test hook: artificially shrink every AA enclosure toward its
  /// midpoint by this relative amount (0 = off, 1 = collapse to a
  /// point) before the containment check — simulates an unsound
  /// runtime so the catch-and-minimize pipeline itself can be tested.
  double InjectShrink = 0.0;
};

/// The full placement x fusion x K grid the fuzzer runs by default:
/// {sorted, direct-mapped} x {smallest, mean, oldest, random} x
/// K in {4, 16, 40}, unprioritized, unvectorized. The containment pass
/// additionally derives a vectorized twin of every eligible config, and
/// the identity pass compares the twins against their scalar originals.
/// The grid also carries four 16-bit entries (f16a/bf16a x {sorted,
/// direct-mapped} at K=16) exercised by the narrow-format pass.
std::vector<aa::AAConfig> defaultConfigGrid();

/// Outcome of running one kernel through the oracle.
struct Verdict {
  bool Ok = true;
  std::string Kind;   ///< "containment" | "narrow-containment" |
                      ///< "prob-support" | "simd-identity" |
                      ///< "bit-identity" | "tape-identity" |
                      ///< "native-identity" | "frontend" (empty if Ok)
  std::string Config; ///< AAConfig notation of the failing run
  std::string Detail; ///< human-readable failure description
  std::string str() const;
};

/// Runs the oracle over already-rendered source (also used for corpus
/// replay). \p Fn is the kernel function name.
Verdict checkKernelSource(const std::string &Source, const OracleOptions &O,
                          const std::string &Fn = "f");

/// Renders \p K and runs the oracle.
Verdict checkKernel(const Kernel &K, const OracleOptions &O);

/// Greedily shrinks \p K while it keeps failing with the same verdict
/// Kind. Deterministic; returns the smallest kernel found.
Kernel minimizeKernel(const Kernel &K, const OracleOptions &O,
                      unsigned MaxRounds = 8);

/// Renders a self-contained corpus reproducer: metadata comment lines
/// (seed, iteration, argument values, failing config) followed by the
/// kernel source. Replayable via replaySource().
std::string reproducerFile(const Kernel &K, const OracleOptions &O,
                           const Verdict &V, uint64_t Seed, uint64_t Iter);

/// Re-runs the oracle on a reproducer (or any kernel source). Argument
/// values are recovered from an "// args: ..." comment line when
/// present; \p Base supplies everything else.
Verdict replaySource(const std::string &Contents, OracleOptions Base);

} // namespace fuzz
} // namespace safegen

#endif // SAFEGEN_FUZZ_ORACLE_H
