//===- BranchBound.h - 0/1 integer programming ------------------*- C++ -*-===//
//
// Part of the SafeGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exact 0/1 ILP solver: LP-relaxation branch and bound on top of the
/// dense simplex, with best-first expansion, LP-bound pruning, and a
/// node/time budget. When the budget is exhausted the incumbent (best
/// feasible found so far) is returned with Status == Feasible, which the
/// max-reuse analysis treats like the paper treats luf: "no (optimal)
/// prioritization found" / best-effort priorities.
///
//===----------------------------------------------------------------------===//

#ifndef SAFEGEN_ILP_BRANCHBOUND_H
#define SAFEGEN_ILP_BRANCHBOUND_H

#include "ilp/Simplex.h"

#include <cstdint>
#include <vector>

namespace safegen {
namespace ilp {

/// maximize c'x  s.t.  A x <= b,  x in {0,1}^n.
struct BinaryProgram {
  int NumVars = 0;
  std::vector<double> Objective;
  std::vector<std::vector<double>> Rows;
  std::vector<double> Rhs;

  void addConstraint(std::vector<double> Row, double B) {
    Rows.push_back(std::move(Row));
    Rhs.push_back(B);
  }
};

enum class ILPStatus {
  Optimal,    ///< proven optimal incumbent
  Feasible,   ///< budget exhausted; incumbent is feasible but unproven
  Infeasible, ///< no 0/1 point satisfies the constraints
};

struct ILPSolution {
  ILPStatus Status = ILPStatus::Infeasible;
  double Objective = 0.0;
  std::vector<uint8_t> X; ///< 0/1 assignment
  int NodesExplored = 0;
};

struct BBOptions {
  int MaxNodes = 20000;    ///< branch-and-bound node budget
  int MaxPivotsPerLP = 20000;
  double Gap = 1e-6;       ///< accept incumbent within this absolute gap
};

/// Solves \p BP by branch and bound.
ILPSolution solveBinaryProgram(const BinaryProgram &BP,
                               const BBOptions &Opts = BBOptions());

} // namespace ilp
} // namespace safegen

#endif // SAFEGEN_ILP_BRANCHBOUND_H
