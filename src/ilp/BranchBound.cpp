//===- BranchBound.cpp ----------------------------------------------------===//
//
// Part of the SafeGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "ilp/BranchBound.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <queue>

using namespace safegen;
using namespace safegen::ilp;

namespace {

constexpr double IntEps = 1e-6;

/// One open node: a partial 0/1 fixing plus the LP bound of its parent.
struct Node {
  std::vector<int8_t> Fixed; ///< -1 free, 0/1 fixed
  double Bound = 0.0;
  bool operator<(const Node &O) const { return Bound < O.Bound; } // max-heap
};

/// Builds the LP relaxation of BP under the node's fixings: free vars get
/// an x <= 1 row; fixed vars are substituted into the constraints.
LinearProgram buildRelaxation(const BinaryProgram &BP,
                              const std::vector<int8_t> &Fixed,
                              std::vector<int> &FreeIndex) {
  FreeIndex.clear();
  std::vector<int> VarToFree(BP.NumVars, -1);
  for (int J = 0; J < BP.NumVars; ++J)
    if (Fixed[J] < 0) {
      VarToFree[J] = static_cast<int>(FreeIndex.size());
      FreeIndex.push_back(J);
    }
  LinearProgram LP;
  LP.NumVars = static_cast<int>(FreeIndex.size());
  LP.Objective.assign(LP.NumVars, 0.0);
  for (int J = 0; J < BP.NumVars; ++J)
    if (VarToFree[J] >= 0)
      LP.Objective[VarToFree[J]] = BP.Objective[J];
  for (size_t R = 0; R < BP.Rows.size(); ++R) {
    std::vector<double> Row(LP.NumVars, 0.0);
    double B = BP.Rhs[R];
    bool AnyFree = false;
    for (int J = 0; J < BP.NumVars; ++J) {
      double Coef = BP.Rows[R][J];
      if (Coef == 0.0)
        continue;
      if (Fixed[J] >= 0)
        B -= Coef * Fixed[J];
      else {
        Row[VarToFree[J]] = Coef;
        AnyFree = true;
      }
    }
    if (AnyFree)
      LP.addConstraint(std::move(Row), B);
    else if (B < -IntEps)
      return LinearProgram{}; // constraint already violated: signal by
                              // NumVars == 0 with a poison row
  }
  // x_j <= 1 for the free variables.
  for (int F = 0; F < LP.NumVars; ++F) {
    std::vector<double> Row(LP.NumVars, 0.0);
    Row[F] = 1.0;
    LP.addConstraint(std::move(Row), 1.0);
  }
  return LP;
}

/// Checks a full 0/1 assignment against all constraints.
bool feasible(const BinaryProgram &BP, const std::vector<uint8_t> &X) {
  for (size_t R = 0; R < BP.Rows.size(); ++R) {
    double Lhs = 0.0;
    for (int J = 0; J < BP.NumVars; ++J)
      if (X[J])
        Lhs += BP.Rows[R][J];
    if (Lhs > BP.Rhs[R] + IntEps)
      return false;
  }
  return true;
}

double objective(const BinaryProgram &BP, const std::vector<uint8_t> &X) {
  double V = 0.0;
  for (int J = 0; J < BP.NumVars; ++J)
    if (X[J])
      V += BP.Objective[J];
  return V;
}

} // namespace

ILPSolution ilp::solveBinaryProgram(const BinaryProgram &BP,
                                    const BBOptions &Opts) {
  ILPSolution Best;
  Best.X.assign(BP.NumVars, 0);
  // All-zero is feasible iff every constraint has rhs >= 0.
  if (feasible(BP, Best.X)) {
    Best.Status = ILPStatus::Feasible;
    Best.Objective = objective(BP, Best.X);
  }

  std::priority_queue<Node> Open;
  Node Root;
  Root.Fixed.assign(BP.NumVars, -1);
  Root.Bound = std::numeric_limits<double>::infinity();
  Open.push(std::move(Root));

  int Nodes = 0;
  bool Exhausted = false;
  while (!Open.empty()) {
    if (Nodes >= Opts.MaxNodes) {
      Exhausted = true;
      break;
    }
    Node Cur = Open.top();
    Open.pop();
    if (Best.Status != ILPStatus::Infeasible &&
        Cur.Bound <= Best.Objective + Opts.Gap)
      continue; // pruned by bound
    ++Nodes;

    std::vector<int> FreeIndex;
    LinearProgram LP = buildRelaxation(BP, Cur.Fixed, FreeIndex);
    if (LP.NumVars == 0 && !FreeIndex.empty())
      continue; // poisoned: a fixed constraint is violated

    double FixedObj = 0.0;
    for (int J = 0; J < BP.NumVars; ++J)
      if (Cur.Fixed[J] == 1)
        FixedObj += BP.Objective[J];

    if (FreeIndex.empty()) {
      // Fully fixed leaf.
      std::vector<uint8_t> X(BP.NumVars, 0);
      for (int J = 0; J < BP.NumVars; ++J)
        X[J] = Cur.Fixed[J] == 1;
      if (feasible(BP, X)) {
        double Obj = objective(BP, X);
        if (Best.Status == ILPStatus::Infeasible || Obj > Best.Objective) {
          Best.Objective = Obj;
          Best.X = X;
          Best.Status = ILPStatus::Feasible;
        }
      }
      continue;
    }

    LPSolution Rel = solveLP(LP, Opts.MaxPivotsPerLP);
    if (Rel.Status == LPStatus::Infeasible)
      continue;
    if (Rel.Status == LPStatus::IterationLimit) {
      Exhausted = true;
      continue;
    }
    double Bound = FixedObj + Rel.Objective;
    if (Best.Status != ILPStatus::Infeasible &&
        Bound <= Best.Objective + Opts.Gap)
      continue;

    // Round the relaxation: is it already integral?
    int BranchVar = -1;
    double BranchFrac = 0.0;
    for (int F = 0; F < LP.NumVars; ++F) {
      double V = Rel.X[F];
      double Frac = std::fabs(V - std::round(V));
      if (Frac > IntEps && Frac > BranchFrac) {
        BranchFrac = Frac;
        BranchVar = FreeIndex[F];
      }
    }
    if (BranchVar < 0) {
      // Integral: candidate incumbent.
      std::vector<uint8_t> X(BP.NumVars, 0);
      for (int J = 0; J < BP.NumVars; ++J)
        X[J] = Cur.Fixed[J] == 1;
      for (int F = 0; F < LP.NumVars; ++F)
        if (Rel.X[F] > 0.5)
          X[FreeIndex[F]] = 1;
      if (feasible(BP, X)) {
        double Obj = objective(BP, X);
        if (Best.Status == ILPStatus::Infeasible || Obj > Best.Objective) {
          Best.Objective = Obj;
          Best.X = std::move(X);
          Best.Status = ILPStatus::Feasible;
        }
      }
      continue;
    }

    // Branch on the most fractional variable, 1-side first (max problem).
    for (int Value : {1, 0}) {
      Node Child;
      Child.Fixed = Cur.Fixed;
      Child.Fixed[BranchVar] = static_cast<int8_t>(Value);
      Child.Bound = Bound;
      Open.push(std::move(Child));
    }
  }

  Best.NodesExplored = Nodes;
  if (Best.Status == ILPStatus::Feasible && !Exhausted && Open.empty())
    Best.Status = ILPStatus::Optimal;
  return Best;
}
