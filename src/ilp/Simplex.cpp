//===- Simplex.cpp --------------------------------------------------------===//
//
// Part of the SafeGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "ilp/Simplex.h"

#include <cassert>
#include <cmath>
#include <limits>

using namespace safegen;
using namespace safegen::ilp;

namespace {

constexpr double Eps = 1e-9;

/// Dense two-phase tableau simplex. Column layout:
///   [0, N)            structural variables
///   [N, N+M)          slack/surplus variables (one per row)
///   [N+M, N+M+A)      artificial variables (phase 1 only)
/// plus the RHS column.
class Tableau {
public:
  Tableau(const LinearProgram &LP) : N(LP.NumVars), M(LP.Rows.size()) {
    // Normalize rows so RHS >= 0; rows that flip become >= constraints and
    // need surplus(-1) + artificial.
    std::vector<int> RowSign(M, 1);
    for (int I = 0; I < M; ++I)
      if (LP.Rhs[I] < 0)
        RowSign[I] = -1;
    NumArtificial = 0;
    for (int I = 0; I < M; ++I)
      if (RowSign[I] < 0)
        ++NumArtificial;

    Cols = N + M + NumArtificial + 1;
    T.assign(M, std::vector<double>(Cols, 0.0));
    Basis.assign(M, -1);

    int NextArt = N + M;
    for (int I = 0; I < M; ++I) {
      for (int J = 0; J < N; ++J)
        T[I][J] = RowSign[I] * LP.Rows[I][J];
      // Slack (<=) or surplus (>= after flip).
      T[I][N + I] = RowSign[I] > 0 ? 1.0 : -1.0;
      T[I][Cols - 1] = RowSign[I] * LP.Rhs[I];
      if (RowSign[I] > 0) {
        Basis[I] = N + I;
      } else {
        T[I][NextArt] = 1.0;
        Basis[I] = NextArt;
        ++NextArt;
      }
    }
  }

  /// Runs phase 1 (if needed) and phase 2 for objective \p C (size N,
  /// maximize). Returns the status; on Optimal fills Obj and X.
  LPStatus solve(const std::vector<double> &C, int MaxPivots, double &Obj,
                 std::vector<double> &X) {
    int PivotsLeft = MaxPivots;
    if (NumArtificial > 0) {
      // Phase 1: maximize -(sum of artificials).
      std::vector<double> Phase1(Cols - 1, 0.0);
      for (int J = N + M; J < Cols - 1; ++J)
        Phase1[J] = -1.0;
      LPStatus S = optimize(Phase1, PivotsLeft);
      if (S != LPStatus::Optimal)
        return S == LPStatus::Unbounded ? LPStatus::Infeasible : S;
      double Phase1Obj = objectiveValue(Phase1);
      if (Phase1Obj < -Eps)
        return LPStatus::Infeasible;
      // Pivot remaining artificials out of the basis where possible.
      for (int I = 0; I < M; ++I) {
        if (Basis[I] < N + M)
          continue;
        bool Pivoted = false;
        for (int J = 0; J < N + M && !Pivoted; ++J)
          if (std::fabs(T[I][J]) > Eps) {
            pivot(I, J);
            Pivoted = true;
          }
        // A zero row: the artificial stays basic at value 0; harmless.
      }
      // Freeze artificial columns.
      ArtificialsFrozen = true;
    }
    std::vector<double> C2(Cols - 1, 0.0);
    for (int J = 0; J < N; ++J)
      C2[J] = C[J];
    LPStatus S = optimize(C2, PivotsLeft);
    if (S != LPStatus::Optimal)
      return S;
    Obj = objectiveValue(C2);
    X.assign(N, 0.0);
    for (int I = 0; I < M; ++I)
      if (Basis[I] < N)
        X[Basis[I]] = T[I][Cols - 1];
    return LPStatus::Optimal;
  }

private:
  double objectiveValue(const std::vector<double> &C) const {
    double V = 0.0;
    for (int I = 0; I < M; ++I)
      if (Basis[I] < static_cast<int>(C.size()))
        V += C[Basis[I]] * T[I][Cols - 1];
    return V;
  }

  void pivot(int Row, int Col) {
    double P = T[Row][Col];
    for (int J = 0; J < Cols; ++J)
      T[Row][J] /= P;
    for (int I = 0; I < M; ++I) {
      if (I == Row || std::fabs(T[I][Col]) < 1e-13)
        continue;
      double F = T[I][Col];
      for (int J = 0; J < Cols; ++J)
        T[I][J] -= F * T[Row][J];
    }
    Basis[Row] = Col;
  }

  /// Primal simplex with Bland's rule, maximizing C (over all columns).
  LPStatus optimize(const std::vector<double> &C, int &PivotsLeft) {
    const int UsableCols =
        ArtificialsFrozen ? N + M : Cols - 1;
    for (;;) {
      if (PivotsLeft-- <= 0)
        return LPStatus::IterationLimit;
      // Reduced costs: rc_j = C_j - C_B' B^-1 A_j. With the tableau in
      // canonical form, rc_j = C_j - sum_i C[Basis[i]] * T[i][j].
      int Entering = -1;
      for (int J = 0; J < UsableCols; ++J) {
        double Rc = J < static_cast<int>(C.size()) ? C[J] : 0.0;
        for (int I = 0; I < M; ++I) {
          int B = Basis[I];
          double Cb = B < static_cast<int>(C.size()) ? C[B] : 0.0;
          if (Cb != 0.0)
            Rc -= Cb * T[I][J];
        }
        if (Rc > Eps) {
          Entering = J; // Bland: first improving column
          break;
        }
      }
      if (Entering < 0)
        return LPStatus::Optimal;
      // Ratio test; Bland tie-break on the basic variable index.
      int Leaving = -1;
      double BestRatio = std::numeric_limits<double>::infinity();
      for (int I = 0; I < M; ++I) {
        if (T[I][Entering] <= Eps)
          continue;
        double Ratio = T[I][Cols - 1] / T[I][Entering];
        if (Ratio < BestRatio - Eps ||
            (Ratio < BestRatio + Eps &&
             (Leaving < 0 || Basis[I] < Basis[Leaving]))) {
          BestRatio = Ratio;
          Leaving = I;
        }
      }
      if (Leaving < 0)
        return LPStatus::Unbounded;
      pivot(Leaving, Entering);
    }
  }

  int N, M;
  int NumArtificial = 0;
  int Cols = 0;
  bool ArtificialsFrozen = false;
  std::vector<std::vector<double>> T;
  std::vector<int> Basis;
};

} // namespace

LPSolution ilp::solveLP(const LinearProgram &LP, int MaxPivots) {
  assert(static_cast<int>(LP.Objective.size()) == LP.NumVars &&
         "objective size mismatch");
  LPSolution Sol;
  if (LP.NumVars == 0) {
    Sol.Status = LPStatus::Optimal;
    return Sol;
  }
  Tableau Tab(LP);
  Sol.Status = Tab.solve(LP.Objective, MaxPivots, Sol.Objective, Sol.X);
  return Sol;
}
