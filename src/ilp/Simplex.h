//===- Simplex.h - Dense primal simplex LP solver ---------------*- C++ -*-===//
//
// Part of the SafeGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small dense LP solver: maximize c'x subject to Ax <= b, x >= 0,
/// solved with the standard tableau primal simplex and Bland's rule
/// (guaranteed termination). It is the relaxation engine for the 0/1
/// branch-and-bound that solves the paper's max-reuse ILP (Sec. VI-B) —
/// the environment-substitute for Gurobi (DESIGN.md §2). Instances are
/// small (hundreds of variables), so O(mn) pivots are fine.
///
//===----------------------------------------------------------------------===//

#ifndef SAFEGEN_ILP_SIMPLEX_H
#define SAFEGEN_ILP_SIMPLEX_H

#include <vector>

namespace safegen {
namespace ilp {

/// Outcome of an LP solve.
enum class LPStatus { Optimal, Infeasible, Unbounded, IterationLimit };

/// maximize c'x  s.t.  A x <= b,  x >= 0.
/// b may contain negative entries (a phase-1 is run when needed).
struct LinearProgram {
  int NumVars = 0;
  std::vector<double> Objective;          ///< size NumVars
  std::vector<std::vector<double>> Rows;  ///< each size NumVars
  std::vector<double> Rhs;                ///< size Rows.size()

  void addConstraint(std::vector<double> Row, double B) {
    Rows.push_back(std::move(Row));
    Rhs.push_back(B);
  }
};

struct LPSolution {
  LPStatus Status = LPStatus::Infeasible;
  double Objective = 0.0;
  std::vector<double> X;
};

/// Solves \p LP. \p MaxPivots bounds the work (IterationLimit returned on
/// exhaustion).
LPSolution solveLP(const LinearProgram &LP, int MaxPivots = 200000);

} // namespace ilp
} // namespace safegen

#endif // SAFEGEN_ILP_SIMPLEX_H
