//===- KernelCache.h - Concurrent compiled-artifact cache -------*- C++ -*-===//
//
// Part of the SafeGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The safegend artifact cache: (source hash, config, function) →
/// immutable compiled artifact (parsed AST + tape + native superblock,
/// the core::CompiledBatchFn split). Design:
///
///  - **Sharded locking.** Keys hash onto a fixed set of shards, each
///    with its own mutex, map, and LRU list, so concurrent lookups of
///    different kernels never contend on one lock.
///
///  - **Single-flight compilation.** The first thread to miss inserts a
///    pending entry and compiles *outside* the shard lock; every
///    concurrent miss for the same key finds the pending entry and waits
///    on its condition variable. N concurrent misses cost exactly one
///    compile (CompileCount observes this; tested by the concurrent-miss
///    test in service_test.cpp).
///
///  - **LRU eviction.** Each shard keeps its entries in recency order and
///    evicts the least recently used *completed* entry when over budget.
///    Entries are handed out as shared_ptr, so eviction never invalidates
///    an artifact a request is still evaluating — it just drops the
///    cache's reference.
///
/// Entries are immutable once Done; concurrent runBatchCompiled calls on
/// one artifact are safe (see core/BatchKernel.h). Failed compiles
/// (parse errors, missing function) are cached as negative entries under
/// the same single-flight discipline, so a misbehaving client cannot
/// force recompilation storms.
///
//===----------------------------------------------------------------------===//

#ifndef SAFEGEN_SERVICE_KERNELCACHE_H
#define SAFEGEN_SERVICE_KERNELCACHE_H

#include "core/BatchKernel.h"
#include "frontend/Frontend.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace safegen {
namespace service {

/// Cache key. Config covers everything that selects evaluation
/// semantics (notation, K, error model, sparsity) even though today the
/// tape itself only depends on the function — keying by config keeps the
/// artifact free to specialize per config later without a protocol
/// change. The engine is *not* part of the key: one artifact carries
/// both the tape and the native superblock, and the engine is chosen per
/// request at evaluation time.
struct CacheKey {
  uint64_t SourceHash = 0;
  std::string Config;   ///< canonical "notation/k/model/sparse" string
  std::string Function;

  bool operator==(const CacheKey &O) const {
    return SourceHash == O.SourceHash && Config == O.Config &&
           Function == O.Function;
  }
  uint64_t hash() const;
};

/// One cached artifact. Immutable after Done flips (under M) except for
/// the LRU bookkeeping, which lives in the shard.
struct CacheEntry {
  // Single-flight state: waiters block on Ready until the inserter
  // finishes compiling (successfully or not).
  std::mutex M;
  std::condition_variable Ready;
  bool Done = false;

  /// Compile outcome. On failure Error is non-empty and CU/Fn are unset.
  std::string Error;
  /// Owns the AST the artifact was compiled from (runBatchCompiled reads
  /// it for the tree fallback and argument construction).
  std::unique_ptr<frontend::CompilationUnit> CU;
  core::CompiledBatchFn Fn;

  bool failed() const { return !Error.empty(); }
  /// Blocks until Done (no-op for the compiling thread's own entry).
  void wait();
};

class KernelCache {
public:
  /// \p Capacity is the maximum number of completed entries kept across
  /// all shards (approximately enforced per shard).
  explicit KernelCache(size_t Capacity = 64);

  /// The single-flight lookup. If the key is cached (or compiling), the
  /// completed entry is returned after waiting. Otherwise \p Source is
  /// compiled by this caller (counts a compile) and every concurrent
  /// caller for the same key shares the result. Returns null only when
  /// the key is absent and \p Source is null — the NeedSource protocol
  /// case.
  std::shared_ptr<CacheEntry>
  acquire(const CacheKey &Key, const std::string *Source,
          const core::InterpreterOptions &Opts);

  /// True when the key is cached or still compiling; touches LRU recency
  /// but no counters. Hit/miss accounting is per *request*, not per
  /// acquire — a drain round acquires once on behalf of many coalesced
  /// requests — so the server reports through noteHit()/noteMiss() at
  /// intake time instead.
  bool contains(const CacheKey &Key);
  void noteHit() { Hits.fetch_add(1, std::memory_order_relaxed); }
  void noteMiss() { Misses.fetch_add(1, std::memory_order_relaxed); }

  uint64_t hits() const { return Hits.load(std::memory_order_relaxed); }
  uint64_t misses() const { return Misses.load(std::memory_order_relaxed); }
  uint64_t evictions() const {
    return Evictions.load(std::memory_order_relaxed);
  }
  uint64_t compiles() const {
    return Compiles.load(std::memory_order_relaxed);
  }
  size_t size() const;

private:
  static constexpr size_t NumShards = 16;

  struct Item {
    CacheKey Key;
    std::shared_ptr<CacheEntry> Entry;
  };
  struct Shard {
    std::mutex M;
    /// Front = most recently used. Map values are iterators into Lru,
    /// stable under the splices that implement the recency touch.
    std::list<Item> Lru;
    std::unordered_map<std::string, std::list<Item>::iterator> Index;
  };

  Shard &shardFor(uint64_t H) { return Shards[H % NumShards]; }
  const Shard &shardFor(uint64_t H) const { return Shards[H % NumShards]; }

  size_t PerShardCapacity;
  mutable Shard Shards[NumShards];
  std::atomic<uint64_t> Hits{0}, Misses{0}, Evictions{0}, Compiles{0};
};

} // namespace service
} // namespace safegen

#endif // SAFEGEN_SERVICE_KERNELCACHE_H
