//===- safegend_main.cpp - sound-evaluation daemon ------------------------===//
//
// Part of the SafeGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `safegend`: the long-running evaluation service. Binds a Unix-domain
/// or loopback TCP socket, then serves wire-protocol requests until a
/// Shutdown message arrives. See src/service/Server.h for the
/// architecture and DESIGN.md §15 for the protocol.
///
//===----------------------------------------------------------------------===//

#include "aa/Kernels/Isa.h"
#include "service/Server.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

using namespace safegen;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: safegend (--socket PATH | --port N) [options]\n"
      "\n"
      "  --socket PATH     listen on a Unix-domain socket at PATH\n"
      "  --port N          listen on 127.0.0.1:N (0 = ephemeral; the\n"
      "                    bound port is printed on startup)\n"
      "  --threads N       drain-task pool size (default: hardware)\n"
      "  --eval-threads N  threads per batched evaluation (default 1)\n"
      "  --cache-size N    compiled-artifact cache capacity (default 64)\n"
      "  --max-pending N   intake bound in queued instances before Busy\n"
      "                    rejections (default 65536)\n"
      "  --isa TIER        force the kernel tier (scalar|sse2|avx2|avx512)\n");
}

} // namespace

int main(int argc, char **argv) {
  service::ServerOptions Opts;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto Next = [&](const char *Flag) -> const char * {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "safegend: %s requires a value\n", Flag);
        return nullptr;
      }
      return argv[++I];
    };
    if (Arg == "--socket") {
      const char *V = Next("--socket");
      if (!V)
        return 1;
      Opts.SocketPath = V;
    } else if (Arg == "--port") {
      const char *V = Next("--port");
      if (!V)
        return 1;
      Opts.TcpPort = std::atoi(V);
    } else if (Arg == "--threads") {
      const char *V = Next("--threads");
      if (!V)
        return 1;
      Opts.Threads = static_cast<unsigned>(std::atoi(V));
    } else if (Arg == "--eval-threads") {
      const char *V = Next("--eval-threads");
      if (!V)
        return 1;
      Opts.EvalThreads = static_cast<unsigned>(std::atoi(V));
    } else if (Arg == "--cache-size") {
      const char *V = Next("--cache-size");
      if (!V)
        return 1;
      Opts.CacheCapacity = static_cast<size_t>(std::atoll(V));
    } else if (Arg == "--max-pending") {
      const char *V = Next("--max-pending");
      if (!V)
        return 1;
      Opts.MaxPendingInstances = static_cast<size_t>(std::atoll(V));
    } else if (Arg == "--isa") {
      const char *V = Next("--isa");
      if (!V)
        return 1;
      aa::isa::Tier T;
      if (!aa::isa::parse(V, T) || !aa::isa::setTier(T)) {
        std::fprintf(stderr, "safegend: unsupported --isa tier '%s'\n", V);
        return 1;
      }
    } else if (Arg == "--help" || Arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "safegend: unknown argument '%s'\n", Arg.c_str());
      usage();
      return 1;
    }
  }
  if (Opts.SocketPath.empty() && Opts.TcpPort < 0) {
    usage();
    return 1;
  }

  // Resolve the kernel tier once, before any worker thread exists — the
  // dispatch is already call_once-guarded, this just front-loads it.
  aa::isa::select();

  service::Server Srv(std::move(Opts));
  std::string Err;
  service::Server *S = &Srv;
  if (!S->start(Err)) {
    std::fprintf(stderr, "safegend: %s\n", Err.c_str());
    return 1;
  }
  if (S->port() >= 0)
    std::fprintf(stderr, "safegend: listening on 127.0.0.1:%d (tier %s)\n",
                 S->port(), aa::isa::name(aa::isa::activeTier()));
  else
    std::fprintf(stderr, "safegend: listening (tier %s)\n",
                 aa::isa::name(aa::isa::activeTier()));
  std::fflush(stderr);
  S->wait();
  service::wire::Stats St = S->stats();
  std::fprintf(stderr,
               "safegend: served %llu requests in %llu batches "
               "(%llu coalesced instances); cache %llu hits / %llu misses / "
               "%llu evictions / %llu compiles; %llu rejected\n",
               static_cast<unsigned long long>(St.Requests),
               static_cast<unsigned long long>(St.BatchesDrained),
               static_cast<unsigned long long>(St.CoalescedInstances),
               static_cast<unsigned long long>(St.CacheHits),
               static_cast<unsigned long long>(St.CacheMisses),
               static_cast<unsigned long long>(St.CacheEvictions),
               static_cast<unsigned long long>(St.CacheCompiles),
               static_cast<unsigned long long>(St.Rejected));
  return 0;
}
