//===- Wire.h - safegend binary wire protocol -------------------*- C++ -*-===//
//
// Part of the SafeGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The length-prefixed binary protocol spoken between `safegend` and its
/// clients (safegen-loadgen, tests, the fuzzer's service-identity phase).
///
/// Framing: every message is one frame — a little-endian u32 payload
/// length followed by that many payload bytes. The first payload byte is
/// the message type; the rest is a flat field sequence (no alignment, no
/// padding). Integers are little-endian; doubles travel as their IEEE-754
/// bit pattern in a u64, so bounds cross the wire bit-exactly — the whole
/// point of the service is that responses are bit-identical to the
/// offline driver. Strings are a u32 byte count followed by raw bytes.
///
/// Request flow: an EvalRequest addresses its kernel by content hash
/// (FNV-1a 64 over the exact source bytes) so a warm client never resends
/// source. On a cache miss without attached source the server answers
/// NeedSource and the client retries with the source attached (whose
/// hash the server verifies). Responses carry the client-chosen
/// RequestId: the server coalesces requests across connections, so
/// responses are not ordered within a connection.
///
//===----------------------------------------------------------------------===//

#ifndef SAFEGEN_SERVICE_WIRE_H
#define SAFEGEN_SERVICE_WIRE_H

#include <cstdint>
#include <string>
#include <vector>

namespace safegen {
namespace service {
namespace wire {

/// Frames larger than this are a protocol error (read side refuses to
/// allocate). Generous: 64 MiB holds ~1M instances of 8 args.
constexpr uint32_t MaxFrameBytes = 64u << 20;

/// FNV-1a 64-bit over arbitrary bytes — the kernel source content hash.
/// Stable and dependency-free; collisions are not an integrity concern
/// because the server re-hashes any attached source before trusting it.
uint64_t fnv1a64(const char *Data, size_t Len);
inline uint64_t fnv1a64(const std::string &S) {
  return fnv1a64(S.data(), S.size());
}

enum class MsgType : uint8_t {
  EvalRequest = 1,
  EvalResponse = 2,
  StatsRequest = 3,
  StatsResponse = 4,
  Shutdown = 5,
  ShutdownAck = 6,
};

enum class Engine : uint8_t { Tape = 0, Native = 1 };

enum class Status : uint8_t {
  Ok = 0,
  Error = 1,      ///< request-level failure (parse error, bad config, ...)
  NeedSource = 2, ///< cache miss and no source attached; retry with source
  Busy = 3,       ///< intake queue full (backpressure); retry later
};

/// One batched evaluation request. Seeds are row-major per instance
/// (instance I's arguments at [I*NumArgs, (I+1)*NumArgs)); arguments a
/// request leaves unspecified default to 0.5 server-side, exactly like
/// the offline driver's --run seeds parameters not covered by --arg.
struct EvalRequest {
  uint32_t RequestId = 0;
  uint64_t SourceHash = 0;
  bool HasSource = false;
  std::string Source;
  std::string Config;  ///< paper notation, e.g. "f64a-dspn"
  uint32_t K = 16;
  uint8_t Model = 0;   ///< 0 = sound, 1 = probabilistic
  uint8_t Sparse = 0;
  Engine Eng = Engine::Tape;
  std::string Function = "f";
  uint32_t NumArgs = 0;
  uint32_t NumInstances = 0;
  std::vector<double> Seeds; ///< NumInstances * NumArgs values
};

/// Per-instance outcome inside an Ok response.
struct InstanceResult {
  bool Success = false;
  std::string Error;
  double Lo = 0.0, Hi = 0.0, CertifiedBits = 0.0;
  bool HasProb = false;
  double ProbConfidence = 0.0, ProbLo = 0.0, ProbHi = 0.0;
  double ProbSupportLo = 0.0, ProbSupportHi = 0.0;
};

struct EvalResponse {
  uint32_t RequestId = 0;
  Status St = Status::Error;
  std::string Message; ///< Error / Busy detail
  std::vector<InstanceResult> Instances;
};

/// Server-side counters (monotonic since startup).
struct Stats {
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0;
  uint64_t CacheEvictions = 0;
  uint64_t CacheCompiles = 0;
  uint64_t CacheEntries = 0;
  uint64_t Requests = 0;
  uint64_t BatchesDrained = 0;
  uint64_t CoalescedInstances = 0;
  uint64_t Rejected = 0; ///< Busy responses sent
};

//===----------------------------------------------------------------------===//
// Flat encode / decode
//===----------------------------------------------------------------------===//

/// Append-only payload builder.
class Writer {
public:
  void u8(uint8_t V) { Buf.push_back(static_cast<char>(V)); }
  void u32(uint32_t V);
  void u64(uint64_t V);
  void f64(double V);
  void str(const std::string &S);
  const std::string &bytes() const { return Buf; }

private:
  std::string Buf;
};

/// Bounds-checked payload reader. Any short read latches the failure
/// flag and yields zero values; callers check ok() once at the end.
class Reader {
public:
  Reader(const char *Data, size_t Len) : P(Data), N(Len) {}
  explicit Reader(const std::string &S) : Reader(S.data(), S.size()) {}
  uint8_t u8();
  uint32_t u32();
  uint64_t u64();
  double f64();
  std::string str();
  bool ok() const { return !Failed; }
  bool atEnd() const { return Pos == N && !Failed; }

private:
  const char *P;
  size_t N;
  size_t Pos = 0;
  bool Failed = false;
  bool take(size_t Count, const char *&Out);
};

std::string encodeEvalRequest(const EvalRequest &R);
std::string encodeEvalResponse(const EvalResponse &R);
std::string encodeStats(const Stats &S);

/// Decoders expect the full payload including the leading type byte and
/// return false on type mismatch or malformed fields.
bool decodeEvalRequest(const std::string &Payload, EvalRequest &Out);
bool decodeEvalResponse(const std::string &Payload, EvalResponse &Out);
bool decodeStats(const std::string &Payload, Stats &Out);

//===----------------------------------------------------------------------===//
// Frame I/O over a connected socket
//===----------------------------------------------------------------------===//

/// Writes one frame (length prefix + payload). Returns false on any
/// socket error; partial writes are completed internally.
bool writeFrame(int Fd, const std::string &Payload);

/// Reads one frame into \p Payload. Returns false on EOF, socket error,
/// or an oversized length prefix.
bool readFrame(int Fd, std::string &Payload);

//===----------------------------------------------------------------------===//
// Client
//===----------------------------------------------------------------------===//

/// A blocking single-connection client (loadgen, tests, CI smoke). One
/// request in flight at a time; NeedSource retries are automatic when
/// the source is provided.
class Client {
public:
  Client() = default;
  ~Client();
  Client(const Client &) = delete;
  Client &operator=(const Client &) = delete;

  /// Connects over a Unix-domain socket path or TCP to 127.0.0.1:port.
  bool connectUnix(const std::string &Path, std::string &Err);
  bool connectTcp(int Port, std::string &Err);
  bool connected() const { return Fd >= 0; }
  void close();

  /// Round-trips one evaluation. When \p R.HasSource is false but
  /// R.Source is non-empty, sends hash-only first and retransmits with
  /// the source on NeedSource (the warm-path protocol).
  bool eval(EvalRequest R, EvalResponse &Out, std::string &Err);
  bool stats(Stats &Out, std::string &Err);
  bool shutdownServer(std::string &Err);

private:
  bool roundTrip(const std::string &Payload, std::string &Reply,
                 std::string &Err);
  int Fd = -1;
};

} // namespace wire
} // namespace service
} // namespace safegen

#endif // SAFEGEN_SERVICE_WIRE_H
