//===- Wire.cpp - safegend binary wire protocol ---------------------------===//
//
// Part of the SafeGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "service/Wire.h"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace safegen;
using namespace safegen::service;
using namespace safegen::service::wire;

uint64_t wire::fnv1a64(const char *Data, size_t Len) {
  uint64_t H = 0xcbf29ce484222325ull;
  for (size_t I = 0; I < Len; ++I) {
    H ^= static_cast<unsigned char>(Data[I]);
    H *= 0x100000001b3ull;
  }
  return H;
}

//===----------------------------------------------------------------------===//
// Writer / Reader
//===----------------------------------------------------------------------===//

void Writer::u32(uint32_t V) {
  for (int I = 0; I < 4; ++I)
    Buf.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

void Writer::u64(uint64_t V) {
  for (int I = 0; I < 8; ++I)
    Buf.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

void Writer::f64(double V) {
  uint64_t Bits;
  static_assert(sizeof(Bits) == sizeof(V));
  std::memcpy(&Bits, &V, sizeof(Bits));
  u64(Bits);
}

void Writer::str(const std::string &S) {
  u32(static_cast<uint32_t>(S.size()));
  Buf.append(S);
}

bool Reader::take(size_t Count, const char *&Out) {
  if (Failed || N - Pos < Count) {
    Failed = true;
    return false;
  }
  Out = P + Pos;
  Pos += Count;
  return true;
}

uint8_t Reader::u8() {
  const char *B;
  if (!take(1, B))
    return 0;
  return static_cast<uint8_t>(*B);
}

uint32_t Reader::u32() {
  const char *B;
  if (!take(4, B))
    return 0;
  uint32_t V = 0;
  for (int I = 0; I < 4; ++I)
    V |= static_cast<uint32_t>(static_cast<unsigned char>(B[I])) << (8 * I);
  return V;
}

uint64_t Reader::u64() {
  const char *B;
  if (!take(8, B))
    return 0;
  uint64_t V = 0;
  for (int I = 0; I < 8; ++I)
    V |= static_cast<uint64_t>(static_cast<unsigned char>(B[I])) << (8 * I);
  return V;
}

double Reader::f64() {
  uint64_t Bits = u64();
  double V;
  std::memcpy(&V, &Bits, sizeof(V));
  return V;
}

std::string Reader::str() {
  uint32_t Len = u32();
  if (Failed || Len > MaxFrameBytes) {
    Failed = true;
    return {};
  }
  const char *B;
  if (!take(Len, B))
    return {};
  return std::string(B, Len);
}

//===----------------------------------------------------------------------===//
// Message encode / decode
//===----------------------------------------------------------------------===//

std::string wire::encodeEvalRequest(const EvalRequest &R) {
  Writer W;
  W.u8(static_cast<uint8_t>(MsgType::EvalRequest));
  W.u32(R.RequestId);
  W.u64(R.SourceHash);
  W.u8(R.HasSource ? 1 : 0);
  if (R.HasSource)
    W.str(R.Source);
  W.str(R.Config);
  W.u32(R.K);
  W.u8(R.Model);
  W.u8(R.Sparse);
  W.u8(static_cast<uint8_t>(R.Eng));
  W.str(R.Function);
  W.u32(R.NumArgs);
  W.u32(R.NumInstances);
  for (double S : R.Seeds)
    W.f64(S);
  return W.bytes();
}

bool wire::decodeEvalRequest(const std::string &Payload, EvalRequest &Out) {
  Reader R(Payload);
  if (R.u8() != static_cast<uint8_t>(MsgType::EvalRequest))
    return false;
  Out.RequestId = R.u32();
  Out.SourceHash = R.u64();
  Out.HasSource = R.u8() != 0;
  Out.Source = Out.HasSource ? R.str() : std::string();
  Out.Config = R.str();
  Out.K = R.u32();
  Out.Model = R.u8();
  Out.Sparse = R.u8();
  Out.Eng = static_cast<Engine>(R.u8());
  Out.Function = R.str();
  Out.NumArgs = R.u32();
  Out.NumInstances = R.u32();
  if (!R.ok())
    return false;
  uint64_t Count =
      static_cast<uint64_t>(Out.NumArgs) * Out.NumInstances;
  if (Count > MaxFrameBytes / 8)
    return false;
  Out.Seeds.resize(Count);
  for (double &S : Out.Seeds)
    S = R.f64();
  return R.atEnd();
}

std::string wire::encodeEvalResponse(const EvalResponse &R) {
  Writer W;
  W.u8(static_cast<uint8_t>(MsgType::EvalResponse));
  W.u32(R.RequestId);
  W.u8(static_cast<uint8_t>(R.St));
  if (R.St != Status::Ok) {
    W.str(R.Message);
    return W.bytes();
  }
  W.u32(static_cast<uint32_t>(R.Instances.size()));
  for (const InstanceResult &I : R.Instances) {
    W.u8(I.Success ? 1 : 0);
    if (!I.Success) {
      W.str(I.Error);
      continue;
    }
    W.f64(I.Lo);
    W.f64(I.Hi);
    W.f64(I.CertifiedBits);
    W.u8(I.HasProb ? 1 : 0);
    if (I.HasProb) {
      W.f64(I.ProbConfidence);
      W.f64(I.ProbLo);
      W.f64(I.ProbHi);
      W.f64(I.ProbSupportLo);
      W.f64(I.ProbSupportHi);
    }
  }
  return W.bytes();
}

bool wire::decodeEvalResponse(const std::string &Payload, EvalResponse &Out) {
  Reader R(Payload);
  if (R.u8() != static_cast<uint8_t>(MsgType::EvalResponse))
    return false;
  Out.RequestId = R.u32();
  Out.St = static_cast<Status>(R.u8());
  Out.Message.clear();
  Out.Instances.clear();
  if (Out.St != Status::Ok) {
    Out.Message = R.str();
    return R.atEnd();
  }
  uint32_t N = R.u32();
  if (!R.ok() || N > MaxFrameBytes / 8)
    return false;
  Out.Instances.resize(N);
  for (InstanceResult &I : Out.Instances) {
    I.Success = R.u8() != 0;
    if (!I.Success) {
      I.Error = R.str();
      continue;
    }
    I.Lo = R.f64();
    I.Hi = R.f64();
    I.CertifiedBits = R.f64();
    I.HasProb = R.u8() != 0;
    if (I.HasProb) {
      I.ProbConfidence = R.f64();
      I.ProbLo = R.f64();
      I.ProbHi = R.f64();
      I.ProbSupportLo = R.f64();
      I.ProbSupportHi = R.f64();
    }
  }
  return R.atEnd();
}

std::string wire::encodeStats(const Stats &S) {
  Writer W;
  W.u8(static_cast<uint8_t>(MsgType::StatsResponse));
  W.u64(S.CacheHits);
  W.u64(S.CacheMisses);
  W.u64(S.CacheEvictions);
  W.u64(S.CacheCompiles);
  W.u64(S.CacheEntries);
  W.u64(S.Requests);
  W.u64(S.BatchesDrained);
  W.u64(S.CoalescedInstances);
  W.u64(S.Rejected);
  return W.bytes();
}

bool wire::decodeStats(const std::string &Payload, Stats &Out) {
  Reader R(Payload);
  if (R.u8() != static_cast<uint8_t>(MsgType::StatsResponse))
    return false;
  Out.CacheHits = R.u64();
  Out.CacheMisses = R.u64();
  Out.CacheEvictions = R.u64();
  Out.CacheCompiles = R.u64();
  Out.CacheEntries = R.u64();
  Out.Requests = R.u64();
  Out.BatchesDrained = R.u64();
  Out.CoalescedInstances = R.u64();
  Out.Rejected = R.u64();
  return R.atEnd();
}

//===----------------------------------------------------------------------===//
// Frame I/O
//===----------------------------------------------------------------------===//

namespace {

bool writeAll(int Fd, const char *Data, size_t Len) {
  while (Len > 0) {
    ssize_t N = ::send(Fd, Data, Len, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Data += N;
    Len -= static_cast<size_t>(N);
  }
  return true;
}

bool readAll(int Fd, char *Data, size_t Len) {
  while (Len > 0) {
    ssize_t N = ::recv(Fd, Data, Len, 0);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    if (N == 0)
      return false; // EOF mid-frame (or before one)
    Data += N;
    Len -= static_cast<size_t>(N);
  }
  return true;
}

} // namespace

bool wire::writeFrame(int Fd, const std::string &Payload) {
  if (Payload.size() > MaxFrameBytes)
    return false;
  char Hdr[4];
  uint32_t Len = static_cast<uint32_t>(Payload.size());
  for (int I = 0; I < 4; ++I)
    Hdr[I] = static_cast<char>((Len >> (8 * I)) & 0xff);
  return writeAll(Fd, Hdr, 4) && writeAll(Fd, Payload.data(), Payload.size());
}

bool wire::readFrame(int Fd, std::string &Payload) {
  char Hdr[4];
  if (!readAll(Fd, Hdr, 4))
    return false;
  uint32_t Len = 0;
  for (int I = 0; I < 4; ++I)
    Len |= static_cast<uint32_t>(static_cast<unsigned char>(Hdr[I]))
           << (8 * I);
  if (Len > MaxFrameBytes)
    return false;
  Payload.resize(Len);
  return Len == 0 || readAll(Fd, Payload.data(), Len);
}

//===----------------------------------------------------------------------===//
// Client
//===----------------------------------------------------------------------===//

Client::~Client() { close(); }

void Client::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

bool Client::connectUnix(const std::string &Path, std::string &Err) {
  close();
  Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    Err = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    Err = "socket path too long: " + Path;
    close();
    return false;
  }
  std::strncpy(Addr.sun_path, Path.c_str(), sizeof(Addr.sun_path) - 1);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    Err = "connect " + Path + ": " + std::strerror(errno);
    close();
    return false;
  }
  return true;
}

bool Client::connectTcp(int Port, std::string &Err) {
  close();
  Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0) {
    Err = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(static_cast<uint16_t>(Port));
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    Err = "connect 127.0.0.1:" + std::to_string(Port) + ": " +
          std::strerror(errno);
    close();
    return false;
  }
  return true;
}

bool Client::roundTrip(const std::string &Payload, std::string &Reply,
                       std::string &Err) {
  if (Fd < 0) {
    Err = "not connected";
    return false;
  }
  if (!writeFrame(Fd, Payload)) {
    Err = "write failed";
    return false;
  }
  if (!readFrame(Fd, Reply)) {
    Err = "read failed (connection closed?)";
    return false;
  }
  return true;
}

bool Client::eval(EvalRequest R, EvalResponse &Out, std::string &Err) {
  if (!R.HasSource && R.SourceHash == 0 && !R.Source.empty())
    R.SourceHash = fnv1a64(R.Source);
  std::string Reply;
  if (!roundTrip(encodeEvalRequest(R), Reply, Err))
    return false;
  if (!decodeEvalResponse(Reply, Out)) {
    Err = "malformed response";
    return false;
  }
  if (Out.St == Status::NeedSource && !R.HasSource && !R.Source.empty()) {
    // Warm-path miss: retransmit once with the source attached.
    R.HasSource = true;
    if (!roundTrip(encodeEvalRequest(R), Reply, Err))
      return false;
    if (!decodeEvalResponse(Reply, Out)) {
      Err = "malformed response";
      return false;
    }
  }
  return true;
}

bool Client::stats(Stats &Out, std::string &Err) {
  Writer W;
  W.u8(static_cast<uint8_t>(MsgType::StatsRequest));
  std::string Reply;
  if (!roundTrip(W.bytes(), Reply, Err))
    return false;
  if (!decodeStats(Reply, Out)) {
    Err = "malformed stats response";
    return false;
  }
  return true;
}

bool Client::shutdownServer(std::string &Err) {
  Writer W;
  W.u8(static_cast<uint8_t>(MsgType::Shutdown));
  std::string Reply;
  if (!roundTrip(W.bytes(), Reply, Err))
    return false;
  Reader R(Reply);
  if (R.u8() != static_cast<uint8_t>(MsgType::ShutdownAck)) {
    Err = "unexpected shutdown reply";
    return false;
  }
  return true;
}
