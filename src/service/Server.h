//===- Server.h - safegend evaluation server --------------------*- C++ -*-===//
//
// Part of the SafeGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The long-running sound-evaluation service (ROADMAP item 2): accepts
/// connections on a Unix-domain or loopback TCP socket, speaks the
/// wire::* protocol, compiles kernels once through the KernelCache, and
/// coalesces same-kernel requests into single batched evaluations.
///
/// Threading model:
///
///  - one accept thread; one blocking reader thread per connection
///    (connection counts are small — this is a compute service, not a
///    C10K proxy);
///  - evaluation runs as drain tasks on a support::ThreadPool via
///    submit(). Each (kernel, config, engine) coalescing key has at most
///    one drain task in flight; the task repeatedly swaps out the key's
///    queued requests, concatenates their instances in arrival order into
///    one Interpreter-batch evaluation, and splits the results back per
///    request. Arrival-order FIFO across connections is the fairness
///    discipline: a drain round serves every queued request of the key,
///    so no connection can starve another, and the bounded intake (below)
///    caps how far any one connection can run ahead.
///
/// Coalescing preserves bit-identity because batch evaluation is
/// per-instance deterministic (each instance evaluates under its own
/// affine environment; Interpreter::runBatch documents results identical
/// to serial per-instance runs, and the fuzzer's threaded-batch phase
/// enforces it) — concatenating requests changes only how instances are
/// tiled over NativeGrain lane groups, never their values.
///
/// Backpressure: the intake tracks the total number of queued instances;
/// a request that would push it past MaxPendingInstances is rejected
/// with Status::Busy instead of queuing unboundedly (clients retry).
///
//===----------------------------------------------------------------------===//

#ifndef SAFEGEN_SERVICE_SERVER_H
#define SAFEGEN_SERVICE_SERVER_H

#include "service/KernelCache.h"
#include "service/Wire.h"
#include "support/ThreadPool.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace safegen {
namespace service {

struct ServerOptions {
  /// Unix-domain socket path (preferred). Exactly one of SocketPath /
  /// TcpPort must be set.
  std::string SocketPath;
  /// Loopback TCP port; 0 picks an ephemeral port (see Server::port()).
  int TcpPort = -1;
  /// Drain-task pool size (0 = hardware concurrency).
  unsigned Threads = 0;
  /// Threads handed to runBatchCompiled per drain round. 1 keeps each
  /// evaluation inline on its drain task — parallelism across kernels —
  /// which is the right default while requests are small; large single
  /// kernels can raise it.
  unsigned EvalThreads = 1;
  /// KernelCache capacity (completed artifacts).
  size_t CacheCapacity = 64;
  /// Intake bound, in queued instances, before Busy rejections.
  size_t MaxPendingInstances = 1u << 16;
  /// Interpreter step budget per instance.
  uint64_t StepBudget = 50'000'000;
};

class Server {
public:
  explicit Server(ServerOptions O);
  ~Server();
  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Binds and starts the accept thread. On failure fills \p Err.
  bool start(std::string &Err);
  /// Blocks until a Shutdown request (or stop()) arrives, then tears
  /// down: stops accepting, closes connections, joins readers, and
  /// drains in-flight evaluations.
  void wait();
  /// Initiates shutdown from any thread (signal handler safe apart from
  /// the mutex; the daemon uses a self-request instead).
  void stop();

  /// Bound TCP port (after start(); for TcpPort == 0).
  int port() const { return BoundPort; }

  wire::Stats stats() const;

private:
  struct Connection;
  struct KeyQueue;
  struct PendingReq {
    std::shared_ptr<Connection> Conn;
    wire::EvalRequest Req;
  };

  void acceptLoop();
  void readerLoop(std::shared_ptr<Connection> Conn);
  void handleRequest(const std::shared_ptr<Connection> &Conn,
                     wire::EvalRequest R);
  void drainKey(std::string CKey);
  void evalRound(std::vector<PendingReq> &Round);
  static void respond(const std::shared_ptr<Connection> &Conn,
                      const wire::EvalResponse &R);

  ServerOptions Opts;
  KernelCache Cache;
  support::ThreadPool Pool;

  int ListenFd = -1;
  int BoundPort = -1;
  std::thread AcceptThread;

  std::mutex ConnsM;
  std::vector<std::shared_ptr<Connection>> Conns;

  // Intake: coalescing key → queue. PendingInstances is the backpressure
  // gauge; Draining counts in-flight drain tasks so shutdown can wait
  // for quiescence.
  std::mutex IntakeM;
  std::condition_variable IntakeIdle;
  std::unordered_map<std::string, KeyQueue> Queues;
  size_t PendingInstances = 0;
  unsigned Draining = 0;

  std::mutex StopM;
  std::condition_variable StopCv;
  bool StopRequested = false;

  std::atomic<uint64_t> Requests{0}, Batches{0}, Coalesced{0}, Rejected{0};
};

} // namespace service
} // namespace safegen

#endif // SAFEGEN_SERVICE_SERVER_H
