//===- Server.cpp - safegend evaluation server ----------------------------===//
//
// Part of the SafeGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "service/Server.h"

#include "aa/Policy.h"
#include "core/Interpreter.h"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace safegen;
using namespace safegen::service;

struct Server::Connection {
  int Fd = -1;
  std::mutex WriteM;        ///< responses interleave across drain tasks
  std::thread Reader;
  std::atomic<bool> Done{false};
};

struct Server::KeyQueue {
  std::vector<PendingReq> Waiting;
  bool InFlight = false;
};

namespace {

/// Validates the request's config block exactly like the offline driver
/// validates its flags, and materializes the AAConfig. Returns an error
/// message, or empty on success.
std::string buildConfig(const wire::EvalRequest &R, aa::AAConfig &Out) {
  std::string Diag;
  std::optional<aa::AAConfig> C = aa::AAConfig::parse(R.Config, Diag);
  if (!C)
    return "bad config '" + R.Config + "': " + Diag;
  if (R.K < 2 || R.K > 128)
    return "k must be in [2, 128], got " + std::to_string(R.K);
  if (R.K > 64 && R.K % 8 != 0)
    return "k > 64 must be a multiple of 8, got " + std::to_string(R.K);
  if (R.Model > 1)
    return "bad error model " + std::to_string(R.Model);
  if (R.Eng != wire::Engine::Tape && R.Eng != wire::Engine::Native)
    return "bad engine";
  Out = *C;
  Out.K = static_cast<int>(R.K);
  Out.Model = R.Model ? aa::ErrorModel::Probabilistic : aa::ErrorModel::Sound;
  Out.Sparse = R.Sparse != 0;
  return {};
}

/// Canonical config string for the cache key: every axis that selects
/// evaluation semantics, in one stable spelling.
std::string configKey(const wire::EvalRequest &R) {
  return R.Config + "/k" + std::to_string(R.K) + "/m" +
         std::to_string(R.Model) + "/s" + std::to_string(R.Sparse);
}

CacheKey cacheKeyFor(const wire::EvalRequest &R) {
  return CacheKey{R.SourceHash, configKey(R), R.Function};
}

/// The coalescing key adds the engine: one drain round evaluates every
/// queued request through a single runBatchCompiled call, which is
/// per-(engine) — the artifact itself is engine-agnostic.
std::string coalesceKey(const wire::EvalRequest &R) {
  return std::to_string(R.SourceHash) + "|" + configKey(R) + "|" +
         R.Function + "|e" + std::to_string(static_cast<int>(R.Eng));
}

core::InterpreterOptions interpOptsFor(const wire::EvalRequest &R,
                                       uint64_t StepBudget) {
  core::InterpreterOptions IO;
  IO.StepBudget = StepBudget;
  IO.Engine = R.Eng == wire::Engine::Native ? core::ExecEngine::Native
                                            : core::ExecEngine::Tape;
  return IO;
}

} // namespace

Server::Server(ServerOptions O)
    : Opts(std::move(O)), Cache(Opts.CacheCapacity), Pool(Opts.Threads) {}

Server::~Server() {
  stop();
  wait();
}

bool Server::start(std::string &Err) {
  if (!Opts.SocketPath.empty()) {
    ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (ListenFd < 0) {
      Err = std::string("socket: ") + std::strerror(errno);
      return false;
    }
    sockaddr_un Addr{};
    Addr.sun_family = AF_UNIX;
    if (Opts.SocketPath.size() >= sizeof(Addr.sun_path)) {
      Err = "socket path too long: " + Opts.SocketPath;
      return false;
    }
    std::strncpy(Addr.sun_path, Opts.SocketPath.c_str(),
                 sizeof(Addr.sun_path) - 1);
    ::unlink(Opts.SocketPath.c_str()); // stale socket from a dead daemon
    if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr),
               sizeof(Addr)) < 0) {
      Err = "bind " + Opts.SocketPath + ": " + std::strerror(errno);
      return false;
    }
  } else if (Opts.TcpPort >= 0) {
    ListenFd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (ListenFd < 0) {
      Err = std::string("socket: ") + std::strerror(errno);
      return false;
    }
    int One = 1;
    ::setsockopt(ListenFd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
    sockaddr_in Addr{};
    Addr.sin_family = AF_INET;
    Addr.sin_port = htons(static_cast<uint16_t>(Opts.TcpPort));
    Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr),
               sizeof(Addr)) < 0) {
      Err = "bind 127.0.0.1:" + std::to_string(Opts.TcpPort) + ": " +
            std::strerror(errno);
      return false;
    }
    sockaddr_in Bound{};
    socklen_t Len = sizeof(Bound);
    if (::getsockname(ListenFd, reinterpret_cast<sockaddr *>(&Bound),
                      &Len) == 0)
      BoundPort = ntohs(Bound.sin_port);
  } else {
    Err = "no socket path or TCP port configured";
    return false;
  }
  if (::listen(ListenFd, 64) < 0) {
    Err = std::string("listen: ") + std::strerror(errno);
    return false;
  }
  AcceptThread = std::thread([this] { acceptLoop(); });
  return true;
}

void Server::acceptLoop() {
  // Polling accept: a blocked accept() is not reliably woken by another
  // thread closing the listen fd, so the loop wakes every 100ms to check
  // the stop flag (shutdown latency, not request latency).
  const int Listen = ListenFd;
  for (;;) {
    pollfd P{Listen, POLLIN, 0};
    int N = ::poll(&P, 1, 100);
    {
      std::lock_guard<std::mutex> Lock(StopM);
      if (StopRequested)
        return;
    }
    if (N < 0 && errno != EINTR)
      return;
    if (N <= 0 || !(P.revents & POLLIN))
      continue;
    int Fd = ::accept(Listen, nullptr, nullptr);
    if (Fd < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)
        continue;
      return; // listen fd closed: shutting down
    }
    auto Conn = std::make_shared<Connection>();
    Conn->Fd = Fd;
    {
      std::lock_guard<std::mutex> Lock(ConnsM);
      if (StopRequested) {
        ::close(Fd);
        return;
      }
      // Reap connections whose readers have exited, so a long-running
      // daemon does not accumulate one dead thread per past client.
      for (auto It = Conns.begin(); It != Conns.end();) {
        if ((*It)->Done.load(std::memory_order_acquire)) {
          (*It)->Reader.join();
          ::close((*It)->Fd);
          It = Conns.erase(It);
        } else {
          ++It;
        }
      }
      Conns.push_back(Conn);
      Conn->Reader = std::thread([this, Conn] { readerLoop(Conn); });
    }
  }
}

void Server::respond(const std::shared_ptr<Connection> &Conn,
                     const wire::EvalResponse &R) {
  std::lock_guard<std::mutex> Lock(Conn->WriteM);
  wire::writeFrame(Conn->Fd, wire::encodeEvalResponse(R));
}

void Server::readerLoop(std::shared_ptr<Connection> Conn) {
  std::string Payload;
  while (wire::readFrame(Conn->Fd, Payload)) {
    if (Payload.empty())
      break;
    switch (static_cast<wire::MsgType>(
        static_cast<uint8_t>(Payload[0]))) {
    case wire::MsgType::EvalRequest: {
      wire::EvalRequest R;
      if (!wire::decodeEvalRequest(Payload, R)) {
        wire::EvalResponse Bad;
        Bad.St = wire::Status::Error;
        Bad.Message = "malformed request";
        respond(Conn, Bad);
        break;
      }
      handleRequest(Conn, std::move(R));
      break;
    }
    case wire::MsgType::StatsRequest: {
      std::lock_guard<std::mutex> Lock(Conn->WriteM);
      wire::writeFrame(Conn->Fd, wire::encodeStats(stats()));
      break;
    }
    case wire::MsgType::Shutdown: {
      {
        std::lock_guard<std::mutex> Lock(Conn->WriteM);
        wire::Writer W;
        W.u8(static_cast<uint8_t>(wire::MsgType::ShutdownAck));
        wire::writeFrame(Conn->Fd, W.bytes());
      }
      stop();
      break;
    }
    default:
      // Unknown type: drop the connection (protocol error).
      Conn->Done.store(true, std::memory_order_release);
      ::shutdown(Conn->Fd, SHUT_RDWR);
      return;
    }
  }
  Conn->Done.store(true, std::memory_order_release);
}

void Server::handleRequest(const std::shared_ptr<Connection> &Conn,
                           wire::EvalRequest R) {
  Requests.fetch_add(1, std::memory_order_relaxed);
  wire::EvalResponse Resp;
  Resp.RequestId = R.RequestId;

  aa::AAConfig Cfg;
  if (std::string Err = buildConfig(R, Cfg); !Err.empty()) {
    Resp.St = wire::Status::Error;
    Resp.Message = std::move(Err);
    respond(Conn, Resp);
    return;
  }
  if (R.HasSource && wire::fnv1a64(R.Source) != R.SourceHash) {
    Resp.St = wire::Status::Error;
    Resp.Message = "source hash mismatch";
    respond(Conn, Resp);
    return;
  }
  if (R.NumInstances == 0) {
    Resp.St = wire::Status::Ok;
    respond(Conn, Resp);
    return;
  }

  // Per-request hit/miss accounting happens here, at intake: a request
  // whose artifact is cached (or already compiling — single-flight) is a
  // hit; an uncached request with source is a miss; an uncached request
  // without source bounces back as NeedSource, uncounted, and returns
  // with the source attached.
  if (Cache.contains(cacheKeyFor(R))) {
    Cache.noteHit();
  } else if (R.HasSource) {
    Cache.noteMiss();
  } else {
    Resp.St = wire::Status::NeedSource;
    respond(Conn, Resp);
    return;
  }

  const size_t N = R.NumInstances;
  std::string CKey = coalesceKey(R);
  bool StartDrain = false;
  {
    std::lock_guard<std::mutex> Lock(IntakeM);
    if (PendingInstances + N > Opts.MaxPendingInstances) {
      Rejected.fetch_add(1, std::memory_order_relaxed);
      Resp.St = wire::Status::Busy;
      Resp.Message = "intake queue full (" +
                     std::to_string(PendingInstances) + " instances pending)";
      respond(Conn, Resp);
      return;
    }
    PendingInstances += N;
    KeyQueue &Q = Queues[CKey];
    Q.Waiting.push_back(PendingReq{Conn, std::move(R)});
    if (!Q.InFlight) {
      Q.InFlight = true;
      ++Draining;
      StartDrain = true;
    }
  }
  if (StartDrain)
    Pool.submit([this, CKey = std::move(CKey)] { drainKey(CKey); });
}

void Server::drainKey(std::string CKey) {
  for (;;) {
    std::vector<PendingReq> Round;
    {
      std::lock_guard<std::mutex> Lock(IntakeM);
      KeyQueue &Q = Queues[CKey];
      Round.swap(Q.Waiting);
      if (Round.empty()) {
        Queues.erase(CKey);
        if (--Draining == 0)
          IntakeIdle.notify_all();
        return;
      }
    }
    evalRound(Round);
    size_t Served = 0;
    for (const PendingReq &P : Round)
      Served += P.Req.NumInstances;
    {
      std::lock_guard<std::mutex> Lock(IntakeM);
      PendingInstances -= Served;
    }
  }
}

void Server::evalRound(std::vector<PendingReq> &Round) {
  const wire::EvalRequest &First = Round.front().Req;
  aa::AAConfig Cfg;
  std::string CfgErr = buildConfig(First, Cfg); // validated at intake
  core::InterpreterOptions IOpts = interpOptsFor(First, Opts.StepBudget);

  const std::string *Source = nullptr;
  for (const PendingReq &P : Round)
    if (P.Req.HasSource) {
      Source = &P.Req.Source;
      break;
    }

  std::shared_ptr<CacheEntry> E;
  if (CfgErr.empty())
    E = Cache.acquire(cacheKeyFor(First), Source, IOpts);

  auto FailAll = [&](wire::Status St, const std::string &Msg) {
    for (const PendingReq &P : Round) {
      wire::EvalResponse Resp;
      Resp.RequestId = P.Req.RequestId;
      Resp.St = St;
      Resp.Message = Msg;
      respond(P.Conn, Resp);
    }
  };
  if (!CfgErr.empty())
    return FailAll(wire::Status::Error, CfgErr);
  if (!E) {
    // The artifact was evicted between intake and drain and no request
    // in this round carries source: bounce everyone back for a retry.
    return FailAll(wire::Status::NeedSource, "");
  }
  E->wait();
  if (E->failed())
    return FailAll(wire::Status::Error, E->Error);

  // Coalesce: concatenate every request's instances in arrival order
  // into one batched evaluation. The batch engine tiles the combined
  // range over NativeGrain lane groups exactly as it would any
  // single-request batch of the same size; per-instance independence
  // (own context, own symbol stream) is what licenses the merge.
  // Arguments a request leaves unspecified default to 0.5, matching the
  // offline driver's --run (which seeds every parameter not covered by
  // an --arg flag with 0.5) — the wire protocol's responses must diff
  // clean against the driver even for clients that send no seeds at all.
  const frontend::TranslationUnit &TU = E->CU->Ctx->tu();
  const size_t NumParams =
      TU.findFunction(First.Function)->getParams().size();
  std::vector<std::vector<double>> InstanceArgs;
  size_t Total = 0;
  for (const PendingReq &P : Round)
    Total += P.Req.NumInstances;
  InstanceArgs.reserve(Total);
  for (const PendingReq &P : Round) {
    const wire::EvalRequest &R = P.Req;
    for (uint32_t I = 0; I < R.NumInstances; ++I) {
      const double *Row = R.Seeds.data() +
                          static_cast<size_t>(I) * R.NumArgs;
      std::vector<double> Args(Row, Row + R.NumArgs);
      Args.resize(std::max<size_t>(Args.size(), NumParams), 0.5);
      InstanceArgs.push_back(std::move(Args));
    }
  }

  std::vector<core::BatchCallResult> Results = core::runBatchCompiled(
      TU, E->Fn, Cfg, InstanceArgs, Opts.EvalThreads, IOpts);

  Batches.fetch_add(1, std::memory_order_relaxed);
  Coalesced.fetch_add(Total, std::memory_order_relaxed);

  size_t Base = 0;
  for (const PendingReq &P : Round) {
    wire::EvalResponse Resp;
    Resp.RequestId = P.Req.RequestId;
    Resp.St = wire::Status::Ok;
    Resp.Instances.resize(P.Req.NumInstances);
    for (uint32_t I = 0; I < P.Req.NumInstances; ++I) {
      const core::BatchCallResult &R = Results[Base + I];
      wire::InstanceResult &O = Resp.Instances[I];
      O.Success = R.Success;
      if (!R.Success) {
        O.Error = R.Error;
        continue;
      }
      O.Lo = R.Return.Lo;
      O.Hi = R.Return.Hi;
      O.CertifiedBits = R.CertifiedBits;
      if (R.HasProb && R.Prob.Valid) {
        O.HasProb = true;
        O.ProbConfidence = R.Prob.Confidence;
        O.ProbLo = R.Prob.Lo;
        O.ProbHi = R.Prob.Hi;
        O.ProbSupportLo = R.Prob.SupportLo;
        O.ProbSupportHi = R.Prob.SupportHi;
      }
    }
    Base += P.Req.NumInstances;
    respond(P.Conn, Resp);
  }
}

void Server::stop() {
  {
    std::lock_guard<std::mutex> Lock(StopM);
    if (StopRequested)
      return;
    StopRequested = true;
  }
  StopCv.notify_all();
}

void Server::wait() {
  {
    std::unique_lock<std::mutex> Lock(StopM);
    StopCv.wait(Lock, [&] { return StopRequested; });
  }
  // Teardown. Join the accept thread first (it exits on the stop flag
  // within one poll interval), then close the listener, then the
  // connections (unblocks readers), then wait for in-flight drain tasks.
  std::thread Accept;
  {
    std::lock_guard<std::mutex> Lock(ConnsM);
    Accept = std::move(AcceptThread);
  }
  if (Accept.joinable())
    Accept.join();
  {
    std::lock_guard<std::mutex> Lock(ConnsM);
    if (ListenFd >= 0) {
      ::close(ListenFd);
      ListenFd = -1;
    }
  }
  std::vector<std::shared_ptr<Connection>> ToJoin;
  {
    std::lock_guard<std::mutex> Lock(ConnsM);
    ToJoin.swap(Conns);
  }
  for (auto &C : ToJoin)
    ::shutdown(C->Fd, SHUT_RDWR);
  for (auto &C : ToJoin) {
    if (C->Reader.joinable())
      C->Reader.join();
    ::close(C->Fd);
  }
  {
    std::unique_lock<std::mutex> Lock(IntakeM);
    IntakeIdle.wait(Lock, [&] { return Draining == 0; });
  }
  if (!Opts.SocketPath.empty())
    ::unlink(Opts.SocketPath.c_str());
}

wire::Stats Server::stats() const {
  wire::Stats S;
  S.CacheHits = Cache.hits();
  S.CacheMisses = Cache.misses();
  S.CacheEvictions = Cache.evictions();
  S.CacheCompiles = Cache.compiles();
  S.CacheEntries = Cache.size();
  S.Requests = Requests.load(std::memory_order_relaxed);
  S.BatchesDrained = Batches.load(std::memory_order_relaxed);
  S.CoalescedInstances = Coalesced.load(std::memory_order_relaxed);
  S.Rejected = Rejected.load(std::memory_order_relaxed);
  return S;
}
