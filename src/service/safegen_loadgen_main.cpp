//===- safegen_loadgen_main.cpp - safegend load generator -----------------===//
//
// Part of the SafeGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `safegen-loadgen`: client for safegend. Two jobs:
///
///  - CI smoke: `--print-results` prints one driver-format result line
///    per instance on stdout (`result in [lo, hi]  (b certified bits)`,
///    plus the probabilistic line when present), so the output diffs
///    byte-for-byte against `safegen --run`.
///
///  - load generation: `--requests M` fires M sequential eval round
///    trips and reports throughput and p50/p99 latency on stderr (and as
///    a machine-readable `loadgen-csv:` line for harnesses).
///
/// The first request attaches no source (warm-path); the client
/// retransmits with source on NeedSource automatically.
///
//===----------------------------------------------------------------------===//

#include "service/Wire.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace safegen;
using namespace safegen::service;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: safegen-loadgen (--socket PATH | --port N) --kernel FILE "
      "[options]\n"
      "\n"
      "  --kernel FILE     kernel source file (required unless --stats/\n"
      "                    --shutdown-server only)\n"
      "  --function NAME   function to evaluate (default: f)\n"
      "  --config NOTATION AAConfig notation (default: f64a-dspn)\n"
      "  -k N              symbol budget (default 16)\n"
      "  --error-model M   sound | probabilistic (default sound)\n"
      "  --sparse          group-sparse batch storage\n"
      "  --engine E        tape | native (default tape)\n"
      "  --arg V           append one argument seed (repeatable);\n"
      "                    unspecified parameters default to 0.5\n"
      "  --instances N     instances per request (default 1)\n"
      "  --requests M      eval round trips to time (default 1)\n"
      "  --print-results   print driver-format result lines on stdout\n"
      "  --stats           print server stats after the run\n"
      "  --shutdown-server send Shutdown when done\n");
}

double percentile(std::vector<double> &Sorted, double P) {
  if (Sorted.empty())
    return 0.0;
  size_t I = static_cast<size_t>(P * static_cast<double>(Sorted.size() - 1));
  return Sorted[I];
}

} // namespace

int main(int argc, char **argv) {
  std::string SocketPath, KernelPath, Function = "f", Config = "f64a-dspn";
  int Port = -1;
  uint32_t K = 16;
  uint8_t Model = 0, Sparse = 0;
  wire::Engine Eng = wire::Engine::Tape;
  std::vector<double> Args;
  uint32_t Instances = 1;
  uint32_t Requests = 1;
  bool PrintResults = false, PrintStats = false, ShutdownServer = false;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto Next = [&](const char *Flag) -> const char * {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "safegen-loadgen: %s requires a value\n", Flag);
        return nullptr;
      }
      return argv[++I];
    };
    const char *V;
    if (Arg == "--socket") {
      if (!(V = Next("--socket")))
        return 1;
      SocketPath = V;
    } else if (Arg == "--port") {
      if (!(V = Next("--port")))
        return 1;
      Port = std::atoi(V);
    } else if (Arg == "--kernel") {
      if (!(V = Next("--kernel")))
        return 1;
      KernelPath = V;
    } else if (Arg == "--function") {
      if (!(V = Next("--function")))
        return 1;
      Function = V;
    } else if (Arg == "--config") {
      if (!(V = Next("--config")))
        return 1;
      Config = V;
    } else if (Arg == "-k") {
      if (!(V = Next("-k")))
        return 1;
      K = static_cast<uint32_t>(std::atoi(V));
    } else if (Arg == "--error-model") {
      if (!(V = Next("--error-model")))
        return 1;
      if (std::strcmp(V, "sound") == 0)
        Model = 0;
      else if (std::strcmp(V, "probabilistic") == 0)
        Model = 1;
      else {
        std::fprintf(stderr, "safegen-loadgen: bad --error-model '%s'\n", V);
        return 1;
      }
    } else if (Arg == "--sparse") {
      Sparse = 1;
    } else if (Arg == "--engine") {
      if (!(V = Next("--engine")))
        return 1;
      if (std::strcmp(V, "tape") == 0)
        Eng = wire::Engine::Tape;
      else if (std::strcmp(V, "native") == 0)
        Eng = wire::Engine::Native;
      else {
        std::fprintf(stderr, "safegen-loadgen: bad --engine '%s'\n", V);
        return 1;
      }
    } else if (Arg == "--arg") {
      if (!(V = Next("--arg")))
        return 1;
      Args.push_back(std::atof(V));
    } else if (Arg == "--instances") {
      if (!(V = Next("--instances")))
        return 1;
      Instances = static_cast<uint32_t>(std::atoi(V));
    } else if (Arg == "--requests") {
      if (!(V = Next("--requests")))
        return 1;
      Requests = static_cast<uint32_t>(std::atoi(V));
    } else if (Arg == "--print-results") {
      PrintResults = true;
    } else if (Arg == "--stats") {
      PrintStats = true;
    } else if (Arg == "--shutdown-server") {
      ShutdownServer = true;
    } else if (Arg == "--help" || Arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "safegen-loadgen: unknown argument '%s'\n",
                   Arg.c_str());
      usage();
      return 1;
    }
  }
  if (SocketPath.empty() && Port < 0) {
    usage();
    return 1;
  }

  wire::Client C;
  std::string Err;
  bool Connected = !SocketPath.empty() ? C.connectUnix(SocketPath, Err)
                                       : C.connectTcp(Port, Err);
  if (!Connected) {
    std::fprintf(stderr, "safegen-loadgen: %s\n", Err.c_str());
    return 1;
  }

  int Rc = 0;
  if (!KernelPath.empty()) {
    std::ifstream In(KernelPath, std::ios::binary);
    if (!In) {
      std::fprintf(stderr, "safegen-loadgen: cannot read %s\n",
                   KernelPath.c_str());
      return 1;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    const std::string Source = Buf.str();

    wire::EvalRequest R;
    R.SourceHash = wire::fnv1a64(Source);
    R.Source = Source; // attached only on NeedSource (warm-path probe)
    R.Config = Config;
    R.K = K;
    R.Model = Model;
    R.Sparse = Sparse;
    R.Eng = Eng;
    R.Function = Function;
    R.NumArgs = static_cast<uint32_t>(Args.size());
    R.NumInstances = Instances;
    R.Seeds.reserve(static_cast<size_t>(Instances) * Args.size());
    for (uint32_t I = 0; I < Instances; ++I)
      R.Seeds.insert(R.Seeds.end(), Args.begin(), Args.end());

    std::vector<double> LatMs;
    LatMs.reserve(Requests);
    wire::EvalResponse Last;
    auto T0 = std::chrono::steady_clock::now();
    for (uint32_t Q = 0; Q < Requests; ++Q) {
      R.RequestId = Q;
      auto S0 = std::chrono::steady_clock::now();
      if (!C.eval(R, Last, Err)) {
        std::fprintf(stderr, "safegen-loadgen: %s\n", Err.c_str());
        return 1;
      }
      auto S1 = std::chrono::steady_clock::now();
      LatMs.push_back(
          std::chrono::duration<double, std::milli>(S1 - S0).count());
      if (Last.St == wire::Status::Busy) {
        // Backpressure: retry this request (bounded client, it just
        // round-trips again).
        --Q;
        LatMs.pop_back();
        continue;
      }
      if (Last.St != wire::Status::Ok) {
        std::fprintf(stderr, "safegen-loadgen: server error: %s\n",
                     Last.Message.c_str());
        return 1;
      }
    }
    auto T1 = std::chrono::steady_clock::now();
    double TotalS = std::chrono::duration<double>(T1 - T0).count();

    if (PrintResults) {
      for (const wire::InstanceResult &I : Last.Instances) {
        if (!I.Success) {
          std::fprintf(stderr, "safegen: runtime error: %s\n",
                       I.Error.c_str());
          Rc = 1;
          continue;
        }
        std::printf("result in [%.17g, %.17g]  (%.1f certified bits)\n",
                    I.Lo, I.Hi, I.CertifiedBits);
        if (I.HasProb)
          std::printf("result (p >= %.2f) in [%.17g, %.17g]  "
                      "support [%.17g, %.17g]\n",
                      I.ProbConfidence, I.ProbLo, I.ProbHi, I.ProbSupportLo,
                      I.ProbSupportHi);
      }
    }
    if (Requests > 1 || !PrintResults) {
      std::sort(LatMs.begin(), LatMs.end());
      double Rps = TotalS > 0 ? static_cast<double>(Requests) / TotalS : 0;
      std::fprintf(stderr,
                   "safegen-loadgen: %u requests x %u instances, %.1f rps, "
                   "p50 %.3f ms, p99 %.3f ms\n",
                   Requests, Instances, Rps, percentile(LatMs, 0.50),
                   percentile(LatMs, 0.99));
      std::fprintf(stderr, "loadgen-csv:%u,%u,%.1f,%.6f,%.6f\n", Requests,
                   Instances, Rps, percentile(LatMs, 0.50),
                   percentile(LatMs, 0.99));
    }
  }

  if (PrintStats) {
    wire::Stats St;
    if (!C.stats(St, Err)) {
      std::fprintf(stderr, "safegen-loadgen: %s\n", Err.c_str());
      return 1;
    }
    std::fprintf(stderr,
                 "server-stats: requests=%llu batches=%llu coalesced=%llu "
                 "hits=%llu misses=%llu evictions=%llu compiles=%llu "
                 "entries=%llu rejected=%llu\n",
                 static_cast<unsigned long long>(St.Requests),
                 static_cast<unsigned long long>(St.BatchesDrained),
                 static_cast<unsigned long long>(St.CoalescedInstances),
                 static_cast<unsigned long long>(St.CacheHits),
                 static_cast<unsigned long long>(St.CacheMisses),
                 static_cast<unsigned long long>(St.CacheEvictions),
                 static_cast<unsigned long long>(St.CacheCompiles),
                 static_cast<unsigned long long>(St.CacheEntries),
                 static_cast<unsigned long long>(St.Rejected));
  }
  if (ShutdownServer) {
    if (!C.shutdownServer(Err)) {
      std::fprintf(stderr, "safegen-loadgen: %s\n", Err.c_str());
      return 1;
    }
  }
  return Rc;
}
