//===- KernelCache.cpp - Concurrent compiled-artifact cache ---------------===//
//
// Part of the SafeGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "service/KernelCache.h"

#include "service/Wire.h"

#include <algorithm>

using namespace safegen;
using namespace safegen::service;

uint64_t CacheKey::hash() const {
  uint64_t H = wire::fnv1a64(Config);
  H ^= wire::fnv1a64(Function) + 0x9e3779b97f4a7c15ull + (H << 6) + (H >> 2);
  H ^= SourceHash + 0x9e3779b97f4a7c15ull + (H << 6) + (H >> 2);
  return H;
}

void CacheEntry::wait() {
  std::unique_lock<std::mutex> Lock(M);
  Ready.wait(Lock, [&] { return Done; });
}

namespace {

std::string indexKey(const CacheKey &Key) {
  return std::to_string(Key.SourceHash) + "|" + Key.Config + "|" +
         Key.Function;
}

} // namespace

KernelCache::KernelCache(size_t Capacity)
    : PerShardCapacity(std::max<size_t>(1, (Capacity + NumShards - 1) /
                                               NumShards)) {}

std::shared_ptr<CacheEntry>
KernelCache::acquire(const CacheKey &Key, const std::string *Source,
                     const core::InterpreterOptions &Opts) {
  Shard &S = shardFor(Key.hash());
  const std::string IK = indexKey(Key);

  std::shared_ptr<CacheEntry> E;
  bool Compile = false;
  {
    std::lock_guard<std::mutex> Lock(S.M);
    auto It = S.Index.find(IK);
    if (It != S.Index.end()) {
      // Present (possibly still compiling — the wait below covers that).
      S.Lru.splice(S.Lru.begin(), S.Lru, It->second);
      E = It->second->Entry;
    } else {
      if (!Source)
        return nullptr; // NeedSource: client retries with source attached
      E = std::make_shared<CacheEntry>();
      S.Lru.push_front({Key, E});
      S.Index.emplace(IK, S.Lru.begin());
      Compile = true;
      // Evict from the cold end, skipping entries still compiling (their
      // inserter holds a shared_ptr, but evicting them would let a
      // concurrent miss start a duplicate compile).
      while (S.Index.size() > PerShardCapacity) {
        auto Victim = S.Lru.end();
        for (auto I = S.Lru.rbegin(); I != S.Lru.rend(); ++I) {
          std::lock_guard<std::mutex> EL(I->Entry->M);
          if (I->Entry->Done) {
            Victim = std::next(I).base();
            break;
          }
        }
        if (Victim == S.Lru.end())
          break; // everything in flight; temporarily over budget
        S.Index.erase(indexKey(Victim->Key));
        S.Lru.erase(Victim);
        Evictions.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }

  if (!Compile) {
    E->wait();
    return E;
  }

  // Single-flight compile, outside the shard lock: concurrent misses for
  // other keys proceed; concurrent misses for this key wait on E.
  Compiles.fetch_add(1, std::memory_order_relaxed);
  std::unique_ptr<frontend::CompilationUnit> CU =
      frontend::parseSource("kernel.c", *Source);
  std::string Error;
  core::CompiledBatchFn Fn;
  if (!CU->Success) {
    Error = "kernel does not parse: " + CU->Diags.renderAll();
  } else {
    Fn = core::compileBatchFn(CU->Ctx->tu(), Key.Function, Opts,
                              /*EmitNative=*/true);
    if (!Fn.FunctionFound)
      Error = "no definition of function '" + Key.Function + "'";
  }
  {
    std::lock_guard<std::mutex> Lock(E->M);
    E->Error = std::move(Error);
    if (E->Error.empty()) {
      E->CU = std::move(CU);
      E->Fn = std::move(Fn);
    }
    E->Done = true;
  }
  E->Ready.notify_all();
  return E;
}

bool KernelCache::contains(const CacheKey &Key) {
  Shard &S = shardFor(Key.hash());
  std::lock_guard<std::mutex> Lock(S.M);
  auto It = S.Index.find(indexKey(Key));
  if (It == S.Index.end())
    return false;
  S.Lru.splice(S.Lru.begin(), S.Lru, It->second);
  return true;
}

size_t KernelCache::size() const {
  size_t N = 0;
  for (Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.M);
    N += S.Index.size();
  }
  return N;
}
