//===- safegen_fuzz_main.cpp - Soundness-fuzzing driver -------------------===//
//
// Part of the SafeGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CLI for the differential soundness fuzzer:
///
///   safegen-fuzz --seed 1 --iters 10000
///   safegen-fuzz --time-budget 60 --corpus tests/fuzz_corpus
///   safegen-fuzz --replay tests/fuzz_corpus
///
/// Each iteration draws a random well-typed kernel, interprets it under
/// the full placement x fusion x K grid with high-precision shadow
/// execution, and checks that every AA enclosure can contain the exact
/// result (plus SIMD-vs-scalar and batch identity). A failing kernel is
/// minimized and written to the corpus as a replayable reproducer.
/// Exit status: 0 = no violations, 1 = violations found, 2 = usage.
///
//===----------------------------------------------------------------------===//

#include "aa/Kernels/Isa.h"
#include "fuzz/Oracle.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

using namespace safegen;

namespace {

void printUsage() {
  std::fprintf(
      stderr,
      "usage: safegen-fuzz [options]\n"
      "\n"
      "  --seed <n>          master RNG seed (default 1)\n"
      "  --iters <n>         kernels to generate (default 1000)\n"
      "  --time-budget <s>   stop after this many seconds (default: none)\n"
      "  --corpus <dir>      write minimized reproducers here\n"
      "                      (default: tests/fuzz_corpus if it exists)\n"
      "  --replay <dir>      re-run every .c reproducer in <dir> instead\n"
      "                      of generating new kernels\n"
      "  --max-failures <n>  stop after n violations (default 5)\n"
      "  --configs <list>    comma-separated AAConfig notations replacing\n"
      "                      the default grid (e.g. f16a-dspn,bf16a-ddpn);\n"
      "                      16-bit formats run the narrow-format pass\n"
      "  --inject-shrink <f> TEST HOOK: artificially shrink every AA\n"
      "                      enclosure by relative factor f to prove the\n"
      "                      catch-and-minimize pipeline works end to end\n"
      "  --isa <tier>        force the runtime SIMD kernel tier (scalar,\n"
      "                      sse2, avx2, avx512); default: widest the host\n"
      "                      supports. SAFEGEN_ISA=<tier> does the same\n"
      "  -v                  per-iteration progress\n"
      "  --help              this text\n");
}

/// Independent RNG stream per iteration, so any failing kernel can be
/// regenerated from (seed, iter) alone.
std::mt19937_64 iterRng(uint64_t Seed, uint64_t Iter) {
  std::seed_seq Seq{Seed, Iter, uint64_t{0x5afe6e9}};
  return std::mt19937_64(Seq);
}

/// Argument values for one iteration: mixed signs, tame magnitudes.
std::vector<double> drawArgs(std::mt19937_64 &Rng, unsigned N) {
  std::vector<double> Vals;
  for (unsigned I = 0; I < N; ++I) {
    double V = static_cast<double>(Rng() % 16384) / 2048.0 - 4.0;
    Vals.push_back(V);
  }
  return Vals;
}

int replayCorpus(const std::string &Dir, const fuzz::OracleOptions &Base) {
  namespace fs = std::filesystem;
  if (!fs::is_directory(Dir)) {
    std::fprintf(stderr, "safegen-fuzz: no such corpus directory: %s\n",
                 Dir.c_str());
    return 2;
  }
  unsigned Files = 0, Violations = 0;
  std::vector<fs::path> Paths;
  for (const auto &Entry : fs::directory_iterator(Dir))
    if (Entry.path().extension() == ".c")
      Paths.push_back(Entry.path());
  std::sort(Paths.begin(), Paths.end());
  for (const fs::path &P : Paths) {
    std::ifstream In(P);
    std::stringstream SS;
    SS << In.rdbuf();
    ++Files;
    fuzz::Verdict V = fuzz::replaySource(SS.str(), Base);
    // Corpus entries document *fixed* bugs: replay must pass now.
    if (!V.Ok) {
      ++Violations;
      std::fprintf(stderr, "FAIL %s: %s\n", P.filename().c_str(),
                   V.str().c_str());
    } else {
      std::printf("ok   %s\n", P.filename().c_str());
    }
  }
  std::printf("replayed %u corpus file(s), %u violation(s)\n", Files,
              Violations);
  return Violations ? 1 : 0;
}

} // namespace

int main(int Argc, char **Argv) {
  uint64_t Seed = 1;
  uint64_t Iters = 1000;
  double TimeBudget = 0.0;
  std::string Corpus;
  std::string ReplayDir;
  unsigned MaxFailures = 5;
  double InjectShrink = 0.0;
  bool Verbose = false;
  std::vector<aa::AAConfig> Configs;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Next = [&]() -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "safegen-fuzz: %s needs a value\n", Arg.c_str());
        std::exit(2);
      }
      return Argv[++I];
    };
    if (Arg == "--seed")
      Seed = std::strtoull(Next(), nullptr, 10);
    else if (Arg == "--iters")
      Iters = std::strtoull(Next(), nullptr, 10);
    else if (Arg == "--time-budget")
      TimeBudget = std::strtod(Next(), nullptr);
    else if (Arg == "--corpus")
      Corpus = Next();
    else if (Arg == "--replay")
      ReplayDir = Next();
    else if (Arg == "--max-failures")
      MaxFailures = static_cast<unsigned>(std::strtoul(Next(), nullptr, 10));
    else if (Arg == "--inject-shrink")
      InjectShrink = std::strtod(Next(), nullptr);
    else if (Arg == "--configs") {
      std::stringstream SS(Next());
      std::string Tok;
      while (std::getline(SS, Tok, ',')) {
        std::string Diag;
        auto Cfg = aa::AAConfig::parse(Tok, Diag);
        if (!Cfg) {
          std::fprintf(stderr, "safegen-fuzz: invalid config '%s': %s\n",
                       Tok.c_str(), Diag.c_str());
          return 2;
        }
        Configs.push_back(*Cfg);
      }
      if (Configs.empty()) {
        std::fprintf(stderr, "safegen-fuzz: --configs needs at least one "
                             "notation\n");
        return 2;
      }
    }
    else if (Arg == "--isa") {
      const char *V = Next();
      aa::isa::Tier T;
      if (!aa::isa::parse(V, T)) {
        std::fprintf(stderr,
                     "safegen-fuzz: --isa must be scalar, sse2, avx2 or "
                     "avx512, got '%s'\n",
                     V);
        return 2;
      }
      if (!aa::isa::setTier(T)) {
        std::fprintf(stderr,
                     "safegen-fuzz: kernel tier '%s' is not available on "
                     "this host/build\n",
                     aa::isa::name(T));
        return 2;
      }
    } else if (Arg == "-v")
      Verbose = true;
    else if (Arg == "--help") {
      printUsage();
      return 0;
    } else {
      std::fprintf(stderr, "safegen-fuzz: unknown option '%s'\n",
                   Arg.c_str());
      printUsage();
      return 2;
    }
  }

  fuzz::OracleOptions Base;
  Base.InjectShrink = InjectShrink;
  Base.Configs = Configs;

  if (!ReplayDir.empty())
    return replayCorpus(ReplayDir, Base);

  if (Corpus.empty() && std::filesystem::is_directory("tests/fuzz_corpus"))
    Corpus = "tests/fuzz_corpus";

  fuzz::GenOptions Gen;
  auto Start = std::chrono::steady_clock::now();
  unsigned Failures = 0;
  uint64_t Done = 0;

  for (uint64_t Iter = 0; Iter < Iters; ++Iter) {
    if (TimeBudget > 0.0) {
      std::chrono::duration<double> Elapsed =
          std::chrono::steady_clock::now() - Start;
      if (Elapsed.count() >= TimeBudget)
        break;
    }
    std::mt19937_64 Rng = iterRng(Seed, Iter);
    fuzz::Kernel K = fuzz::generateKernel(Rng, Gen);
    fuzz::OracleOptions O = Base;
    O.ArgValues = drawArgs(Rng, std::max(1u, K.NumParams));
    fuzz::Verdict V = fuzz::checkKernel(K, O);
    ++Done;
    if (Verbose && Iter % 100 == 0)
      std::fprintf(stderr, "iter %llu ok\n",
                   static_cast<unsigned long long>(Iter));
    if (V.Ok)
      continue;

    ++Failures;
    std::fprintf(stderr, "VIOLATION at seed=%llu iter=%llu: %s\n",
                 static_cast<unsigned long long>(Seed),
                 static_cast<unsigned long long>(Iter), V.str().c_str());
    fuzz::Kernel Min = fuzz::minimizeKernel(K, O);
    fuzz::Verdict MinV = fuzz::checkKernel(Min, O);
    const fuzz::Kernel &Repro = MinV.Ok ? K : Min;
    const fuzz::Verdict &ReproV = MinV.Ok ? V : MinV;
    std::fprintf(stderr, "minimized %zu -> %zu nodes\n", K.size(),
                 Repro.size());
    if (!Corpus.empty()) {
      std::filesystem::create_directories(Corpus);
      std::ostringstream Name;
      Name << Corpus << "/crash-" << Seed << "-" << Iter << ".c";
      std::ofstream Out(Name.str());
      Out << fuzz::reproducerFile(Repro, O, ReproV, Seed, Iter);
      std::fprintf(stderr, "reproducer written to %s\n", Name.str().c_str());
    } else {
      std::fprintf(stderr, "%s\n", fuzz::renderKernel(Repro).c_str());
    }
    if (Failures >= MaxFailures) {
      std::fprintf(stderr, "stopping after %u failure(s)\n", Failures);
      break;
    }
  }

  std::chrono::duration<double> Elapsed =
      std::chrono::steady_clock::now() - Start;
  std::printf("%llu kernel(s), %zu config(s) each, %u violation(s), "
              "%.1fs\n",
              static_cast<unsigned long long>(Done),
              Configs.empty() ? fuzz::defaultConfigGrid().size()
                              : Configs.size(),
              Failures, Elapsed.count());
  return Failures ? 1 : 0;
}
