//===- safegen_main.cpp - The safegen command-line driver -----------------===//
//
// Part of the SafeGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CLI for the SafeGen source-to-source compiler:
///
///   safegen input.c -o output.c --config f64a-dspv -k 16
///
/// Options mirror the paper's knobs: --config takes the notation of
/// Sec. VII (placement/fusion/prioritize/vectorize), -k the symbol
/// budget; --no-analysis skips the static prioritization even for *p*
/// configs; --dump-dag writes the computation DAG as Graphviz.
///
//===----------------------------------------------------------------------===//

#include "aa/ErrorSemantics.h"
#include "aa/Kernels/Isa.h"
#include "core/Interpreter.h"
#include "core/SafeGen.h"
#include "core/SimdToC.h"
#include "frontend/ASTPrinter.h"
#include "frontend/Frontend.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace safegen;

namespace {

void printUsage() {
  std::fprintf(
      stderr,
      "usage: safegen <input.c> [options]\n"
      "\n"
      "  -o <file>          output file (default: stdout)\n"
      "  --config <name>    affine configuration, e.g. f64a-dspv, dda-dspn\n"
      "                     (precision f32a|f64a|dda|f16a|bf16a; placement\n"
      "                      s|d, fusion s|m|o|r, priority p|n, vectorize\n"
      "                      v|n; default f64a-dspn)\n"
      "  --error-model <m>  error semantics for --run: sound (interval\n"
      "                     bound, default) or prob (additionally a 99%%\n"
      "                     probabilistic enclosure per Constantinides et\n"
      "                     al.; the sound bound always contains it)\n"
      "  -k <n>             symbol budget per affine variable, in [2, 128]\n"
      "                     (default 16; above 64, n must be a multiple of\n"
      "                      8 so the sparse row pool's doubling schedule\n"
      "                      can reach it)\n"
      "  --sparse           group-sparse batch storage: occupancy-tracked\n"
      "                     8-lane coefficient groups with an adaptive\n"
      "                     row pool (grows 16->32->64->K under fusion\n"
      "                     pressure). Bit-identical results; wins time\n"
      "                     and memory in the large-K regime (-k 64/128)\n"
      "  --function <name>  transform only this function (repeatable)\n"
      "  --no-analysis      skip the max-reuse static analysis\n"
      "  --dump-dag <file>  write the computation DAG (Graphviz)\n"
      "  --run <function>   interpret <function> soundly instead of\n"
      "                     emitting code; scalar/array parameters are\n"
      "                     filled from --arg values (1-ulp inputs)\n"
      "  --arg <number>     argument for --run (repeatable, in order)\n"
      "  --instances <n>    route --run through the batched interpreter\n"
      "                     with n identical instances and print the first\n"
      "                     result (the offline reference for safegend)\n"
      "  --engine <e>       execution engine for --run: tape (compiled\n"
      "                     tape, tree fallback), native (tape compiled\n"
      "                     to a fused superblock; scalar runs share the\n"
      "                     tape VM) or tree (reference tree-walk);\n"
      "                     results are bit-identical across engines\n"
      "  --isa <tier>       force the runtime SIMD kernel tier: scalar,\n"
      "                     sse2, avx2 or avx512 (default: widest the\n"
      "                     host supports; results are bit-identical\n"
      "                     across tiers). SAFEGEN_ISA=<tier> in the\n"
      "                     environment does the same\n"
      "  --compile-tape     time the tape compiler as a pipeline pass\n"
      "                     (see --time-passes/--stats; output unchanged)\n"
      "  --simd-to-c        only scalarize SIMD intrinsics (IGen's\n"
      "                     preprocessing step); no affine rewriting\n"
      "  --pre-simd-to-c    scalarize SIMD intrinsics, then run the\n"
      "                     regular affine pipeline\n"
      "\n"
      "pass-pipeline instrumentation (reports go to stderr):\n"
      "  --time-passes        per-pass wall-clock timing report\n"
      "  --stats              pass statistics counters\n"
      "  --verify-each        re-verify AST invariants after every pass\n"
      "  --print-pipeline     print the pass pipeline and exit status\n"
      "  --print-after=<p>    dump the AST after pass <p> (repeatable)\n"
      "  --disable-pass=<p>   skip pass <p> (repeatable)\n"
      "  --help             this text\n");
}

/// Checked decimal parse for integer option values, in the spirit of
/// AAConfig::parse: the whole token must be consumed and the value must
/// land in [Lo, Hi]. Fills \p Diag and returns false otherwise — unlike
/// atoi, which silently accepts "16abc", garbage, and overflow.
bool parseIntOption(const char *V, long Lo, long Hi, long &Out,
                    std::string &Diag) {
  errno = 0;
  char *End = nullptr;
  long Val = std::strtol(V, &End, 10);
  if (End == V || *End != '\0') {
    Diag = "not an integer";
    return false;
  }
  if (errno == ERANGE || Val < Lo || Val > Hi) {
    Diag = "must be in [" + std::to_string(Lo) + ", " + std::to_string(Hi) +
           "]";
    return false;
  }
  Out = Val;
  return true;
}

bool writeFileOrStdout(const std::string &Path, const std::string &Text) {
  if (Path.empty()) {
    std::fwrite(Text.data(), 1, Text.size(), stdout);
    return true;
  }
  FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F)
    return false;
  std::fwrite(Text.data(), 1, Text.size(), F);
  std::fclose(F);
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string Input;
  std::string Output;
  std::string DagFile;
  std::string RunFunction;
  std::vector<double> RunArgs;
  unsigned RunInstances = 0;
  bool SimdToCOnly = false;
  core::InterpreterOptions InterpOpts;
  core::SafeGenOptions Opts;
  Opts.Config = *aa::AAConfig::parse("f64a-dspn");
  Opts.Config.K = 16;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto NextValue = [&](const char *Flag) -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "safegen: missing value for %s\n", Flag);
        return nullptr;
      }
      return Argv[++I];
    };
    if (Arg == "--help" || Arg == "-h") {
      printUsage();
      return 0;
    }
    if (Arg == "-o") {
      const char *V = NextValue("-o");
      if (!V)
        return 1;
      Output = V;
      continue;
    }
    if (Arg == "--config") {
      const char *V = NextValue("--config");
      if (!V)
        return 1;
      int SavedK = Opts.Config.K;
      aa::ErrorModel SavedModel = Opts.Config.Model;
      std::string Diag;
      auto C = aa::AAConfig::parse(V, Diag);
      if (!C) {
        std::fprintf(stderr, "safegen: invalid configuration '%s': %s\n", V,
                     Diag.c_str());
        return 1;
      }
      Opts.Config = *C;
      Opts.Config.K = SavedK;
      Opts.Config.Model = SavedModel;
      continue;
    }
    if (Arg == "--error-model" || Arg.rfind("--error-model=", 0) == 0) {
      std::string V;
      if (Arg == "--error-model") {
        const char *N = NextValue("--error-model");
        if (!N)
          return 1;
        V = N;
      } else {
        V = Arg.substr(14);
      }
      if (V == "sound")
        Opts.Config.Model = aa::ErrorModel::Sound;
      else if (V == "prob" || V == "probabilistic")
        Opts.Config.Model = aa::ErrorModel::Probabilistic;
      else {
        std::fprintf(stderr,
                     "safegen: --error-model must be 'sound' or 'prob', "
                     "got '%s'\n",
                     V.c_str());
        return 1;
      }
      continue;
    }
    if (Arg == "-k") {
      const char *V = NextValue("-k");
      if (!V)
        return 1;
      long K;
      std::string Diag;
      if (!parseIntOption(V, 2, 128, K, Diag)) {
        std::fprintf(stderr,
                     "safegen: invalid -k value '%s': %s (the symbol budget "
                     "ceiling is 128)\n",
                     V, Diag.c_str());
        return 1;
      }
      // Above the legacy dense ceiling, keep K reachable by the adaptive
      // sparse row pool: capacities double 16 -> 32 -> 64 and then clamp
      // to K, and the large-K regime keeps that final step (and the
      // direct-mapped slot space) aligned to whole 8-slot groups.
      if (K > 64 && K % 8 != 0) {
        std::fprintf(stderr,
                     "safegen: invalid -k value '%s': above 64 the symbol "
                     "budget must be a multiple of 8 so the adaptive row "
                     "pool's doubling schedule (16, 32, 64, then K) can "
                     "reach it; try %ld or %ld\n",
                     V, K & ~7L, (K + 7) & ~7L);
        return 1;
      }
      Opts.Config.K = static_cast<int>(K);
      continue;
    }
    if (Arg == "--sparse") {
      Opts.Config.Sparse = true;
      continue;
    }
    if (Arg == "--function") {
      const char *V = NextValue("--function");
      if (!V)
        return 1;
      Opts.Functions.push_back(V);
      continue;
    }
    if (Arg == "--no-analysis") {
      Opts.RunAnalysis = false;
      continue;
    }
    if (Arg == "--dump-dag") {
      const char *V = NextValue("--dump-dag");
      if (!V)
        return 1;
      DagFile = V;
      Opts.DumpDAG = true;
      continue;
    }
    if (Arg == "--run") {
      const char *V = NextValue("--run");
      if (!V)
        return 1;
      RunFunction = V;
      continue;
    }
    if (Arg == "--simd-to-c") {
      SimdToCOnly = true;
      continue;
    }
    if (Arg == "--pre-simd-to-c") {
      Opts.LowerSimdFirst = true;
      continue;
    }
    if (Arg == "--time-passes") {
      Opts.Instrument.TimePasses = true;
      continue;
    }
    if (Arg == "--stats") {
      Opts.Instrument.CollectStats = true;
      continue;
    }
    if (Arg == "--verify-each") {
      Opts.Instrument.VerifyEach = true;
      continue;
    }
    if (Arg == "--print-pipeline") {
      Opts.Instrument.PrintPipeline = true;
      continue;
    }
    if (Arg.rfind("--print-after=", 0) == 0) {
      Opts.Instrument.PrintAfter.push_back(Arg.substr(14));
      continue;
    }
    if (Arg == "--print-after") {
      const char *V = NextValue("--print-after");
      if (!V)
        return 1;
      Opts.Instrument.PrintAfter.push_back(V);
      continue;
    }
    if (Arg.rfind("--disable-pass=", 0) == 0) {
      Opts.Instrument.DisabledPasses.push_back(Arg.substr(15));
      continue;
    }
    if (Arg == "--disable-pass") {
      const char *V = NextValue("--disable-pass");
      if (!V)
        return 1;
      Opts.Instrument.DisabledPasses.push_back(V);
      continue;
    }
    if (Arg == "--engine" || Arg.rfind("--engine=", 0) == 0) {
      std::string V;
      if (Arg == "--engine") {
        const char *N = NextValue("--engine");
        if (!N)
          return 1;
        V = N;
      } else {
        V = Arg.substr(9);
      }
      if (V == "tape")
        InterpOpts.Engine = core::ExecEngine::Tape;
      else if (V == "native")
        InterpOpts.Engine = core::ExecEngine::Native;
      else if (V == "tree")
        InterpOpts.Engine = core::ExecEngine::Tree;
      else {
        std::fprintf(stderr,
                     "safegen: --engine must be 'tape', 'native' or 'tree', "
                     "got '%s'\n",
                     V.c_str());
        return 1;
      }
      continue;
    }
    if (Arg == "--isa" || Arg.rfind("--isa=", 0) == 0) {
      std::string V;
      if (Arg == "--isa") {
        const char *N = NextValue("--isa");
        if (!N)
          return 1;
        V = N;
      } else {
        V = Arg.substr(6);
      }
      aa::isa::Tier T;
      if (!aa::isa::parse(V, T)) {
        std::fprintf(stderr,
                     "safegen: --isa must be scalar, sse2, avx2 or avx512, "
                     "got '%s'\n",
                     V.c_str());
        return 1;
      }
      if (!aa::isa::setTier(T)) {
        std::fprintf(stderr,
                     "safegen: kernel tier '%s' is not available on this "
                     "host/build\n",
                     aa::isa::name(T));
        return 1;
      }
      continue;
    }
    if (Arg == "--compile-tape") {
      Opts.CompileTape = true;
      continue;
    }
    if (Arg == "--arg") {
      const char *V = NextValue("--arg");
      if (!V)
        return 1;
      RunArgs.push_back(std::atof(V));
      continue;
    }
    if (Arg == "--instances") {
      const char *V = NextValue("--instances");
      if (!V)
        return 1;
      int N = std::atoi(V);
      if (N < 1) {
        std::fprintf(stderr, "safegen: --instances must be >= 1, got '%s'\n",
                     V);
        return 1;
      }
      RunInstances = static_cast<unsigned>(N);
      continue;
    }
    if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "safegen: unknown option '%s'\n", Arg.c_str());
      printUsage();
      return 1;
    }
    if (!Input.empty()) {
      std::fprintf(stderr, "safegen: multiple inputs given\n");
      return 1;
    }
    Input = Arg;
  }

  if (Input.empty()) {
    printUsage();
    return 1;
  }

  if (SimdToCOnly) {
    auto CU = frontend::parseFile(Input);
    if (!CU) {
      std::fprintf(stderr, "safegen: cannot read '%s'\n", Input.c_str());
      return 1;
    }
    if (!CU->Success || !core::lowerSimdToC(*CU->Ctx, CU->Diags)) {
      std::fputs(CU->Diags.renderAll().c_str(), stderr);
      return 1;
    }
    frontend::ASTPrinter Printer;
    if (!writeFileOrStdout(Output, Printer.print(CU->Ctx->tu()))) {
      std::fprintf(stderr, "safegen: cannot write '%s'\n", Output.c_str());
      return 1;
    }
    return 0;
  }

  if (!RunFunction.empty()) {
    auto CU = frontend::parseFile(Input);
    if (!CU) {
      std::fprintf(stderr, "safegen: cannot read '%s'\n", Input.c_str());
      return 1;
    }
    if (!CU->Success) {
      std::fputs(CU->Diags.renderAll().c_str(), stderr);
      return 1;
    }
    frontend::FunctionDecl *F =
        CU->Ctx->tu().findFunction(RunFunction);
    if (!F || !F->isDefinition()) {
      std::fprintf(stderr, "safegen: no definition of '%s'\n",
                   RunFunction.c_str());
      return 1;
    }
    // The 16-bit formats run on the format-generic scalar tape and never
    // through the F64a tree walker — route them through the batch entry
    // point (one instance). The batch result only carries the scalar
    // return enclosure, so kernels whose outputs live in array arguments
    // get an honest note instead of a fabricated result line.
    const bool Narrow = Opts.Config.Precision == aa::Format::F16 ||
                        Opts.Config.Precision == aa::Format::BF16;
    if (Narrow) {
      std::vector<double> Seeds;
      for (size_t I = 0; I < F->getParams().size(); ++I)
        Seeds.push_back(I < RunArgs.size() ? RunArgs[I] : 0.5);
      std::vector<core::BatchCallResult> RS = core::Interpreter::runBatch(
          CU->Ctx->tu(), RunFunction, Opts.Config, {Seeds}, 1, InterpOpts);
      const core::BatchCallResult &R = RS[0];
      if (!R.Success) {
        std::fprintf(stderr, "safegen: runtime error: %s\n", R.Error.c_str());
        return 1;
      }
      if (!F->getReturnType()->isVoid())
        std::printf("result in [%.17g, %.17g]  (%.1f certified bits)\n",
                    R.Return.Lo, R.Return.Hi, R.CertifiedBits);
      if (R.HasProb && R.Prob.Valid)
        std::printf("result (p >= %.2f) in [%.17g, %.17g]  "
                    "support [%.17g, %.17g]\n",
                    R.Prob.Confidence, R.Prob.Lo, R.Prob.Hi, R.Prob.SupportLo,
                    R.Prob.SupportHi);
      bool HasArrayOut = false;
      for (const frontend::VarDecl *P : F->getParams())
        if (P->getType()->isPointer() || P->getType()->isArray())
          HasArrayOut = true;
      if (HasArrayOut)
        std::fprintf(stderr,
                     "safegen: note: array outputs are not reported under "
                     "16-bit formats (scalar return only)\n");
      std::fprintf(stderr,
                   "safegen: interpreted %llu steps soundly (%s, %s model, "
                   "tape engine)\n",
                   static_cast<unsigned long long>(R.StepsUsed),
                   Opts.Config.str().c_str(),
                   aa::errorModelName(Opts.Config.Model));
      return 0;
    }
    // --instances: the batched-interpreter reference path. safegend
    // serves every request through Interpreter::runBatch (coalesced
    // batches), whose columns executors may differ from the scalar
    // interpreter in the final ulp (a different — still sound —
    // error-summation order). The CI smoke therefore diffs loadgen
    // output against this mode, which is the same offline entry point.
    // All instances share the seeds; bitwise cross-instance agreement is
    // enforced here so the printed first instance speaks for the batch.
    if (RunInstances > 0) {
      std::vector<double> Seeds;
      for (size_t I = 0; I < F->getParams().size(); ++I)
        Seeds.push_back(I < RunArgs.size() ? RunArgs[I] : 0.5);
      std::vector<std::vector<double>> Rows(RunInstances, Seeds);
      std::vector<core::BatchCallResult> RS = core::Interpreter::runBatch(
          CU->Ctx->tu(), RunFunction, Opts.Config, Rows, 1, InterpOpts);
      const core::BatchCallResult &R = RS[0];
      if (!R.Success) {
        std::fprintf(stderr, "safegen: runtime error: %s\n", R.Error.c_str());
        return 1;
      }
      for (const core::BatchCallResult &O : RS)
        if (O.Return.Lo != R.Return.Lo || O.Return.Hi != R.Return.Hi) {
          std::fprintf(stderr,
                       "safegen: FATAL: instances of one batch disagree\n");
          return 1;
        }
      if (!F->getReturnType()->isVoid())
        std::printf("result in [%.17g, %.17g]  (%.1f certified bits)\n",
                    R.Return.Lo, R.Return.Hi, R.CertifiedBits);
      if (R.HasProb && R.Prob.Valid)
        std::printf("result (p >= %.2f) in [%.17g, %.17g]  "
                    "support [%.17g, %.17g]\n",
                    R.Prob.Confidence, R.Prob.Lo, R.Prob.Hi, R.Prob.SupportLo,
                    R.Prob.SupportHi);
      std::fprintf(stderr,
                   "safegen: interpreted %u instances soundly (%s, %s model, "
                   "%s engine)\n",
                   RunInstances, Opts.Config.str().c_str(),
                   aa::errorModelName(Opts.Config.Model),
                   InterpOpts.Engine == core::ExecEngine::Native ? "native"
                   : InterpOpts.Engine == core::ExecEngine::Tree ? "tree"
                                                                 : "tape");
      return 0;
    }
    sg::SoundScope Scope(Opts.Config);
    std::vector<core::Value> Args;
    for (size_t I = 0; I < F->getParams().size(); ++I) {
      double V = I < RunArgs.size() ? RunArgs[I] : 0.5;
      Args.push_back(
          core::Interpreter::makeDefaultArg(F->getParams()[I]->getType(), V));
    }
    std::vector<core::Value> ArgsCopy = Args; // arrays are shared
    core::Interpreter Interp(CU->Ctx->tu(), InterpOpts);
    core::InterpResult R = Interp.call(RunFunction, std::move(Args));
    if (!R.Success) {
      std::fprintf(stderr, "safegen: runtime error: %s\n", R.Error.c_str());
      return 1;
    }
    auto PrintValue = [](const char *What, const core::Value &V) {
      if (V.kind() == core::Value::Kind::Affine) {
        ia::Interval I = V.asAffine().toInterval();
        std::printf("%s in [%.17g, %.17g]  (%.1f certified bits)\n", What,
                    I.Lo, I.Hi, V.asAffine().certifiedBits());
      } else if (V.kind() == core::Value::Kind::Int) {
        std::printf("%s = %lld\n", What, V.asInt());
      }
    };
    PrintValue("result", R.ReturnValue);
    // The probabilistic enclosure needs the final affine form and the
    // upward rounding mode, both still live here under the SoundScope.
    if (Opts.Config.Model == aa::ErrorModel::Probabilistic &&
        R.ReturnValue.kind() == core::Value::Kind::Affine) {
      aa::ProbEnclosure P =
          aa::probEnclosure(R.ReturnValue.asAffine().storage());
      if (P.Valid)
        std::printf("result (p >= %.2f) in [%.17g, %.17g]  "
                    "support [%.17g, %.17g]\n",
                    P.Confidence, P.Lo, P.Hi, P.SupportLo, P.SupportHi);
    }
    for (size_t I = 0; I < ArgsCopy.size(); ++I) {
      const core::Value &V = ArgsCopy[I];
      if (V.kind() != core::Value::Kind::Array)
        continue;
      for (size_t J = 0; J < V.elems().size() && J < 8; ++J) {
        std::string What = F->getParams()[I]->getName() + "[" +
                           std::to_string(J) + "]";
        PrintValue(What.c_str(), V.elems()[J]);
      }
    }
    const char *EngineName =
        !R.UsedTape ? "tree engine"
        : InterpOpts.Engine == core::ExecEngine::Native
            ? "native engine (scalar via tape VM)"
            : "tape engine";
    std::fprintf(stderr,
                 "safegen: interpreted %llu steps soundly (%s, %s model, "
                 "%s)\n",
                 static_cast<unsigned long long>(R.StepsUsed),
                 Opts.Config.str().c_str(),
                 aa::errorModelName(Opts.Config.Model), EngineName);
    return 0;
  }

  core::SafeGenResult Result = core::compileFile(Input, Opts);
  if (!Result.Diagnostics.empty())
    std::fputs(Result.Diagnostics.c_str(), stderr);
  if (!Result.PipelineDescription.empty())
    std::fprintf(stderr, "safegen: pipeline: %s\n",
                 Result.PipelineDescription.c_str());
  if (!Result.PassDumps.empty())
    std::fputs(Result.PassDumps.c_str(), stderr);
  if (!Result.TimingReport.empty())
    std::fputs(Result.TimingReport.c_str(), stderr);
  if (!Result.StatsReport.empty()) {
    std::fputs("===-------------------------------------------------------"
               "------===\n"
               "                      ... Pass statistics ...\n"
               "===-------------------------------------------------------"
               "------===\n",
               stderr);
    std::fputs(Result.StatsReport.c_str(), stderr);
  }
  if (!Result.Success)
    return 1;

  if (!writeFileOrStdout(Output, Result.OutputSource)) {
    std::fprintf(stderr, "safegen: cannot write '%s'\n", Output.c_str());
    return 1;
  }
  if (Opts.DumpDAG && !writeFileOrStdout(DagFile, Result.DAGDump)) {
    std::fprintf(stderr, "safegen: cannot write '%s'\n", DagFile.c_str());
    return 1;
  }
  for (const auto &Report : Result.Reports)
    std::fprintf(stderr,
                 "safegen: analysis: %d DAG nodes, %d reuse pairs, "
                 "profit %.0f%s, %u pragmas\n",
                 Report.DAGNodes, Report.ReusePairs, Report.TotalProfit,
                 Report.Optimal ? " (optimal)" : "", Report.PragmasInserted);
  return 0;
}
