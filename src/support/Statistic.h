//===- Statistic.h - LLVM-style statistics counters -------------*- C++ -*-===//
//
// Part of the SafeGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Statistics counters in the LLVM STATISTIC spirit, but scoped to one
/// compilation instead of the process: passes bump named counters in a
/// StatsRegistry owned by the PassManager, and the driver renders them
/// under `--stats`. Registry-scoped (rather than global) counters keep
/// concurrent and repeated compilations independent.
///
//===----------------------------------------------------------------------===//

#ifndef SAFEGEN_SUPPORT_STATISTIC_H
#define SAFEGEN_SUPPORT_STATISTIC_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace safegen {
namespace support {

/// One rendered counter.
struct StatisticValue {
  std::string Name;        ///< "pass.counter", e.g. "const-fold.folded"
  std::string Description; ///< human-readable, may be empty
  uint64_t Value = 0;
};

/// Collects the counters of one compilation. Append-only; names are
/// created on first use.
class StatsRegistry {
public:
  /// Adds \p Delta to counter \p Name, creating it (with \p Description)
  /// on first use.
  void add(const std::string &Name, uint64_t Delta,
           const std::string &Description = "");

  /// Current value of \p Name (0 if never touched).
  uint64_t get(const std::string &Name) const;

  bool empty() const { return Counters.empty(); }

  /// All counters, sorted by name.
  std::vector<StatisticValue> values() const;

  /// LLVM-style report: one "<value>  <name> - <description>" line per
  /// counter, sorted by name.
  std::string render() const;

private:
  struct Entry {
    std::string Description;
    uint64_t Value = 0;
  };
  std::map<std::string, Entry> Counters;
};

/// A named counter bound to a registry: `Statistic S(Reg, "tac.temps",
/// "..."); S += 4;`. A null registry makes every update a no-op, so
/// library code can count unconditionally.
class Statistic {
public:
  Statistic(StatsRegistry *Registry, std::string Name,
            std::string Description = "")
      : Registry(Registry), Name(std::move(Name)),
        Description(std::move(Description)) {}

  Statistic &operator+=(uint64_t Delta) {
    if (Registry && Delta)
      Registry->add(Name, Delta, Description);
    return *this;
  }
  Statistic &operator++() { return *this += 1; }

private:
  StatsRegistry *Registry;
  std::string Name;
  std::string Description;
};

} // namespace support
} // namespace safegen

#endif // SAFEGEN_SUPPORT_STATISTIC_H
