//===- SourceManager.cpp --------------------------------------------------===//
//
// Part of the SafeGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "support/SourceManager.h"

#include <cassert>
#include <cstdio>
#include <sstream>

using namespace safegen;

std::string SourceLocation::str() const {
  if (!isValid())
    return "<invalid>";
  std::ostringstream OS;
  OS << Line << ':' << Column;
  return OS.str();
}

void SourceManager::setMainBuffer(std::string NewFileName, std::string Text) {
  FileName = std::move(NewFileName);
  Buffer = std::move(Text);
  LineOffsets.clear();
  LineOffsets.push_back(0);
  for (uint32_t I = 0, E = Buffer.size(); I != E; ++I)
    if (Buffer[I] == '\n')
      LineOffsets.push_back(I + 1);
}

bool SourceManager::loadFile(const std::string &Path) {
  FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return false;
  std::string Text;
  char Chunk[4096];
  size_t N;
  while ((N = std::fread(Chunk, 1, sizeof(Chunk), F)) > 0)
    Text.append(Chunk, N);
  std::fclose(F);
  setMainBuffer(Path, std::move(Text));
  return true;
}

std::string_view SourceManager::getLine(uint32_t Line) const {
  if (Line == 0 || Line > LineOffsets.size())
    return {};
  uint32_t Begin = LineOffsets[Line - 1];
  uint32_t End = Line < LineOffsets.size() ? LineOffsets[Line] : Buffer.size();
  // Strip the newline (and a possible '\r' before it).
  while (End > Begin && (Buffer[End - 1] == '\n' || Buffer[End - 1] == '\r'))
    --End;
  return std::string_view(Buffer).substr(Begin, End - Begin);
}

SourceLocation SourceManager::locationForOffset(uint32_t Offset) const {
  assert(Offset <= Buffer.size() && "offset past end of buffer");
  // Binary search for the greatest line start <= Offset.
  uint32_t Lo = 0, Hi = LineOffsets.size();
  while (Hi - Lo > 1) {
    uint32_t Mid = Lo + (Hi - Lo) / 2;
    if (LineOffsets[Mid] <= Offset)
      Lo = Mid;
    else
      Hi = Mid;
  }
  return SourceLocation(Lo + 1, Offset - LineOffsets[Lo] + 1, Offset);
}
