//===- SourceLocation.h - Positions inside a source buffer -----*- C++ -*-===//
//
// Part of the SafeGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight value types that identify a position (line/column/offset) and
/// a half-open range inside a source buffer. Used by the lexer, parser,
/// diagnostics and the annotation pass, which must map computation-DAG nodes
/// back to the exact statement that created them.
///
//===----------------------------------------------------------------------===//

#ifndef SAFEGEN_SUPPORT_SOURCELOCATION_H
#define SAFEGEN_SUPPORT_SOURCELOCATION_H

#include <cstdint>
#include <string>

namespace safegen {

/// A position in a source buffer. Line and column are 1-based; offset is the
/// 0-based byte offset from the start of the buffer. A default-constructed
/// location is invalid.
struct SourceLocation {
  uint32_t Line = 0;
  uint32_t Column = 0;
  uint32_t Offset = 0;

  SourceLocation() = default;
  SourceLocation(uint32_t Line, uint32_t Column, uint32_t Offset)
      : Line(Line), Column(Column), Offset(Offset) {}

  bool isValid() const { return Line != 0; }

  bool operator==(const SourceLocation &Other) const {
    return Offset == Other.Offset && Line == Other.Line &&
           Column == Other.Column;
  }
  bool operator<(const SourceLocation &Other) const {
    return Offset < Other.Offset;
  }

  /// Renders the location as "line:column" for diagnostics.
  std::string str() const;
};

/// A half-open byte range [Begin, End) in a source buffer.
struct SourceRange {
  SourceLocation Begin;
  SourceLocation End;

  SourceRange() = default;
  SourceRange(SourceLocation Begin, SourceLocation End)
      : Begin(Begin), End(End) {}

  bool isValid() const { return Begin.isValid(); }
};

} // namespace safegen

#endif // SAFEGEN_SUPPORT_SOURCELOCATION_H
