//===- ThreadPool.h - Work-stealing thread pool and parallelFor -*- C++ -*-===//
//
// Part of the SafeGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small work-stealing thread pool for data-parallel batch evaluation.
/// Each worker owns a deque of tasks: the owner pushes and pops at the
/// back (LIFO, cache-warm), idle workers steal from the front of a victim
/// (FIFO, oldest chunk — the classic Cilk discipline). parallelFor()
/// splits an index range into more chunks than workers so stealing can
/// re-balance uneven chunk costs (affine ops get more expensive as symbol
/// slots fill, so equal-sized chunks are *not* equal-cost).
///
/// Soundness under concurrency: the pool itself never touches the FPU
/// rounding mode or the affine environment — both are thread-local, so
/// every task that evaluates sound code must install its own
/// fp::RoundUpwardScope (and AffineEnvScope / BatchEnvScope) for exactly
/// the duration of the task body. aa::batch::run() does this for batch
/// programs; tasks submitted directly must do it themselves.
///
/// Built when SAFEGEN_ENABLE_THREADS is ON (the default). When OFF the
/// same interface exists but runs every task inline on the caller.
///
//===----------------------------------------------------------------------===//

#ifndef SAFEGEN_SUPPORT_THREADPOOL_H
#define SAFEGEN_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace safegen {
namespace support {

/// A fixed-size pool of worker threads with per-worker stealing deques.
class ThreadPool {
public:
  /// Sizes the pool for \p Threads workers (0 = one per hardware
  /// thread). The OS threads spawn lazily on the first parallelFor that
  /// fans out, so constructing a pool that never dispatches is free.
  /// With SAFEGEN_ENABLE_THREADS off, or Threads == 1, no workers are
  /// ever spawned and everything runs inline on the calling thread.
  explicit ThreadPool(unsigned NumThreads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Number of threads that can make progress concurrently (workers, or 1
  /// when running inline).
  unsigned concurrency() const;

  /// Runs Body(ChunkBegin, ChunkEnd) over a partition of [Begin, End) and
  /// returns when every chunk has finished. Chunks are at least \p Grain
  /// indices (>= 1) and there are at most ChunksPerWorker * concurrency()
  /// of them. Body must be safe to invoke concurrently from worker
  /// threads; exceptions must not escape it.
  void parallelFor(int64_t Begin, int64_t End, int64_t Grain,
                   const std::function<void(int64_t, int64_t)> &Body);

  /// Same, but every chunk size is rounded up to a multiple of \p Align
  /// (except the final ragged chunk). Callers writing fixed-stride
  /// per-index results use Align so that no two chunks ever share a
  /// cache line of the result sink (false-sharing control).
  void parallelFor(int64_t Begin, int64_t End, int64_t Grain, int64_t Align,
                   const std::function<void(int64_t, int64_t)> &Body);

  /// Enqueues \p Fn as a standalone task and returns a future for its
  /// completion. An exception thrown by the task is captured into the
  /// future (get() rethrows it); it never escapes into a worker loop.
  /// Safe to call from a worker thread executing another task: the task
  /// lands on the submitting worker's own deque and runs once the current
  /// task returns — but a task that *blocks* on a future of work it just
  /// submitted can deadlock a fully-busy pool, so compose with
  /// continuations (submit-and-return), not nested waits. Tasks still
  /// queued when the pool shuts down are drained: the destructor runs
  /// them (workers first, destructor inline as a backstop) before
  /// joining, so a returned future always becomes ready. Inline pools
  /// (concurrency() == 1 with no workers) run the task before returning.
  std::future<void> submit(std::function<void()> Fn);

  /// A process-wide shared pool (lazily constructed, hardware-sized).
  static ThreadPool &global();

private:
  struct Task;
  struct Worker;

  void workerLoop(unsigned Index);
  void runTask(Task &T);
  bool trySteal(unsigned Thief, Task &Out);
  void ensureStarted();

  static constexpr int ChunksPerWorker = 8;

  std::vector<std::unique_ptr<Worker>> Workers;
  std::vector<std::thread> Threads;
  std::mutex WakeMutex;
  std::condition_variable WakeCv;
  bool ShuttingDown = false;
  unsigned NextSubmitWorker = 0; // guarded by WakeMutex (round-robin)
};

} // namespace support
} // namespace safegen

#endif // SAFEGEN_SUPPORT_THREADPOOL_H
