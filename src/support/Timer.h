//===- Timer.h - Wall-clock timers for pass instrumentation -----*- C++ -*-===//
//
// Part of the SafeGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small wall-clock timers in the LLVM Timer spirit: a Timer accumulates
/// elapsed time across start()/stop() cycles, and TimerScope times one
/// region RAII-style. Used by the PassManager for `--time-passes`.
///
//===----------------------------------------------------------------------===//

#ifndef SAFEGEN_SUPPORT_TIMER_H
#define SAFEGEN_SUPPORT_TIMER_H

#include <cassert>
#include <chrono>

namespace safegen {
namespace support {

/// Accumulating wall-clock timer. Not thread-safe (one timer per thread).
class Timer {
  using Clock = std::chrono::steady_clock;

public:
  void start() {
    assert(!Running && "timer already running");
    Running = true;
    Start = Clock::now();
  }

  void stop() {
    assert(Running && "timer not running");
    Accumulated += Clock::now() - Start;
    Running = false;
  }

  bool isRunning() const { return Running; }

  /// Total accumulated wall-clock seconds (excluding a running interval).
  double seconds() const {
    return std::chrono::duration<double>(Accumulated).count();
  }

  void reset() {
    Accumulated = Clock::duration::zero();
    Running = false;
  }

private:
  Clock::time_point Start;
  Clock::duration Accumulated = Clock::duration::zero();
  bool Running = false;
};

/// Times one scope: starts \p T on construction, stops it on destruction.
class TimerScope {
public:
  explicit TimerScope(Timer &T) : T(T) { T.start(); }
  ~TimerScope() { T.stop(); }
  TimerScope(const TimerScope &) = delete;
  TimerScope &operator=(const TimerScope &) = delete;

private:
  Timer &T;
};

} // namespace support
} // namespace safegen

#endif // SAFEGEN_SUPPORT_TIMER_H
