//===- StringUtils.h - Small string helpers ---------------------*- C++ -*-===//
//
// Part of the SafeGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// String helpers shared by the frontend and the code emitter.
///
//===----------------------------------------------------------------------===//

#ifndef SAFEGEN_SUPPORT_STRINGUTILS_H
#define SAFEGEN_SUPPORT_STRINGUTILS_H

#include <string>
#include <string_view>
#include <vector>

namespace safegen {

/// Returns \p S without leading/trailing whitespace.
std::string_view trim(std::string_view S);

/// Splits \p S at every occurrence of \p Sep (separators are not included;
/// empty pieces are kept).
std::vector<std::string_view> split(std::string_view S, char Sep);

/// True if \p S starts with \p Prefix.
bool startsWith(std::string_view S, std::string_view Prefix);

/// True if \p S ends with \p Suffix.
bool endsWith(std::string_view S, std::string_view Suffix);

/// Formats a double so that reading it back yields the identical bits
/// (shortest round-trippable decimal form, C syntax).
std::string formatDoubleExact(double Value);

/// Joins the elements of \p Parts with \p Sep.
std::string join(const std::vector<std::string> &Parts,
                 std::string_view Sep);

} // namespace safegen

#endif // SAFEGEN_SUPPORT_STRINGUTILS_H
