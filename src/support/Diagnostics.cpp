//===- Diagnostics.cpp ----------------------------------------------------===//
//
// Part of the SafeGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"
#include "support/SourceManager.h"

#include <sstream>

using namespace safegen;

static const char *severityName(DiagSeverity S) {
  switch (S) {
  case DiagSeverity::Note:
    return "note";
  case DiagSeverity::Warning:
    return "warning";
  case DiagSeverity::Error:
    return "error";
  }
  return "unknown";
}

void DiagnosticsEngine::report(DiagSeverity Severity, SourceLocation Loc,
                               std::string Message) {
  if (Severity == DiagSeverity::Error)
    ++NumErrors;
  Diags.push_back(Diagnostic{Severity, Loc, std::move(Message)});
}

std::string DiagnosticsEngine::render(const Diagnostic &D) const {
  std::ostringstream OS;
  if (SM && !SM->getFileName().empty())
    OS << SM->getFileName() << ':';
  if (D.Loc.isValid())
    OS << D.Loc.Line << ':' << D.Loc.Column << ": ";
  else
    OS << ' ';
  OS << severityName(D.Severity) << ": " << D.Message << '\n';
  if (SM && D.Loc.isValid()) {
    std::string_view Line = SM->getLine(D.Loc.Line);
    if (!Line.empty()) {
      OS << Line << '\n';
      for (uint32_t I = 1; I < D.Loc.Column; ++I)
        OS << (I <= Line.size() && Line[I - 1] == '\t' ? '\t' : ' ');
      OS << "^\n";
    }
  }
  return OS.str();
}

std::string DiagnosticsEngine::renderAll() const {
  std::string Out;
  for (const Diagnostic &D : Diags)
    Out += render(D);
  return Out;
}
