//===- SourceManager.h - Owns source buffers --------------------*- C++ -*-===//
//
// Part of the SafeGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Owns the text of the translation unit being compiled and answers
/// location queries (extracting a line for caret diagnostics, mapping byte
/// offsets back to line/column).
///
//===----------------------------------------------------------------------===//

#ifndef SAFEGEN_SUPPORT_SOURCEMANAGER_H
#define SAFEGEN_SUPPORT_SOURCEMANAGER_H

#include "support/SourceLocation.h"

#include <string>
#include <string_view>
#include <vector>

namespace safegen {

/// Owns one source buffer (SafeGen compiles a single C file at a time, like
/// the paper's tool) plus the line-offset table derived from it.
class SourceManager {
public:
  SourceManager() = default;

  /// Installs \p Text as the buffer for \p FileName, replacing any previous
  /// buffer, and rebuilds the line table.
  void setMainBuffer(std::string FileName, std::string Text);

  /// Reads \p Path from disk into the main buffer. Returns false (and leaves
  /// the manager untouched) if the file cannot be read.
  bool loadFile(const std::string &Path);

  const std::string &getFileName() const { return FileName; }
  std::string_view getBuffer() const { return Buffer; }

  /// Returns the full text of the (1-based) line \p Line without the
  /// trailing newline, or an empty view if out of range.
  std::string_view getLine(uint32_t Line) const;

  /// Maps a byte offset into the buffer to a full SourceLocation.
  SourceLocation locationForOffset(uint32_t Offset) const;

  /// Number of lines in the buffer.
  uint32_t getNumLines() const { return LineOffsets.size(); }

private:
  std::string FileName;
  std::string Buffer;
  /// Byte offset of the start of each line; LineOffsets[0] == 0.
  std::vector<uint32_t> LineOffsets;
};

} // namespace safegen

#endif // SAFEGEN_SUPPORT_SOURCEMANAGER_H
