//===- StringUtils.cpp ----------------------------------------------------===//
//
// Part of the SafeGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "support/StringUtils.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>

using namespace safegen;

std::string_view safegen::trim(std::string_view S) {
  size_t B = 0, E = S.size();
  while (B < E && std::isspace(static_cast<unsigned char>(S[B])))
    ++B;
  while (E > B && std::isspace(static_cast<unsigned char>(S[E - 1])))
    --E;
  return S.substr(B, E - B);
}

std::vector<std::string_view> safegen::split(std::string_view S, char Sep) {
  std::vector<std::string_view> Out;
  size_t Begin = 0;
  for (size_t I = 0; I <= S.size(); ++I) {
    if (I == S.size() || S[I] == Sep) {
      Out.push_back(S.substr(Begin, I - Begin));
      Begin = I + 1;
    }
  }
  return Out;
}

bool safegen::startsWith(std::string_view S, std::string_view Prefix) {
  return S.size() >= Prefix.size() && S.compare(0, Prefix.size(), Prefix) == 0;
}

bool safegen::endsWith(std::string_view S, std::string_view Suffix) {
  return S.size() >= Suffix.size() &&
         S.compare(S.size() - Suffix.size(), Suffix.size(), Suffix) == 0;
}

std::string safegen::formatDoubleExact(double Value) {
  if (std::isnan(Value))
    return "(0.0/0.0)";
  if (std::isinf(Value))
    return Value > 0 ? "(1.0/0.0)" : "(-1.0/0.0)";
  char Buf[64];
  // Find the shortest precision that round-trips.
  for (int Prec = 1; Prec <= 17; ++Prec) {
    std::snprintf(Buf, sizeof(Buf), "%.*g", Prec, Value);
    double Back = 0;
    std::sscanf(Buf, "%lf", &Back);
    if (Back == Value || (std::isnan(Back) && std::isnan(Value)))
      break;
  }
  std::string S(Buf);
  // Make sure the literal parses as a double in C (e.g. "42" -> "42.0").
  if (S.find_first_of(".eE") == std::string::npos &&
      S.find("inf") == std::string::npos && S.find("nan") == std::string::npos)
    S += ".0";
  return S;
}

std::string safegen::join(const std::vector<std::string> &Parts,
                          std::string_view Sep) {
  std::string Out;
  for (size_t I = 0; I < Parts.size(); ++I) {
    if (I)
      Out += Sep;
    Out += Parts[I];
  }
  return Out;
}
