//===- Diagnostics.h - Error/warning reporting ------------------*- C++ -*-===//
//
// Part of the SafeGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small diagnostics engine in the Clang spirit: diagnostics carry a
/// severity, a location and a message; the engine records them, renders them
/// with a caret line, and lets the driver decide how to surface them.
/// Library code never prints directly and never throws.
///
//===----------------------------------------------------------------------===//

#ifndef SAFEGEN_SUPPORT_DIAGNOSTICS_H
#define SAFEGEN_SUPPORT_DIAGNOSTICS_H

#include "support/SourceLocation.h"

#include <string>
#include <vector>

namespace safegen {

class SourceManager;

enum class DiagSeverity { Note, Warning, Error };

/// One rendered diagnostic.
struct Diagnostic {
  DiagSeverity Severity = DiagSeverity::Error;
  SourceLocation Loc;
  std::string Message;
};

/// Collects diagnostics for one compilation. The engine is append-only;
/// passes query hasErrors() to decide whether to continue.
class DiagnosticsEngine {
public:
  explicit DiagnosticsEngine(const SourceManager *SM = nullptr) : SM(SM) {}

  void setSourceManager(const SourceManager *NewSM) { SM = NewSM; }

  void error(SourceLocation Loc, std::string Message) {
    report(DiagSeverity::Error, Loc, std::move(Message));
  }
  void warning(SourceLocation Loc, std::string Message) {
    report(DiagSeverity::Warning, Loc, std::move(Message));
  }
  void note(SourceLocation Loc, std::string Message) {
    report(DiagSeverity::Note, Loc, std::move(Message));
  }
  void report(DiagSeverity Severity, SourceLocation Loc, std::string Message);

  bool hasErrors() const { return NumErrors != 0; }
  unsigned getNumErrors() const { return NumErrors; }
  const std::vector<Diagnostic> &getAll() const { return Diags; }

  /// Renders every recorded diagnostic as "file:line:col: severity: msg"
  /// followed by the source line and a caret, concatenated into one string.
  std::string renderAll() const;

  /// Renders a single diagnostic (same format as renderAll).
  std::string render(const Diagnostic &D) const;

private:
  const SourceManager *SM;
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace safegen

#endif // SAFEGEN_SUPPORT_DIAGNOSTICS_H
