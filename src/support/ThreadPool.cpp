//===- ThreadPool.cpp - Work-stealing thread pool -------------------------===//
//
// Part of the SafeGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <algorithm>
#include <atomic>
#include <cassert>

using namespace safegen;
using namespace safegen::support;

/// State shared by every chunk of one parallelFor call. Lives on the
/// caller's stack; the caller only returns once Remaining hits zero and
/// the last worker has released M, so no dangling references are possible.
struct ParallelForJob {
  const std::function<void(int64_t, int64_t)> *Body = nullptr;
  std::mutex M;
  std::condition_variable Done;
  int64_t Remaining = 0; // guarded by M
};

struct ThreadPool::Task {
  // Either one chunk of a parallelFor job (Job != null) or a standalone
  // submitted task (Fn != null). packaged_task routes any exception into
  // the caller's future, so worker loops never see one.
  ParallelForJob *Job = nullptr;
  int64_t Begin = 0;
  int64_t End = 0;
  std::shared_ptr<std::packaged_task<void()>> Fn;
};

namespace {
// The pool and worker slot the current thread belongs to, if any.
// Re-entrant submit() uses it to push onto the submitting worker's own
// deque (LIFO, cache-warm) instead of taking the round-robin path.
thread_local ThreadPool *CurrentPool = nullptr;
thread_local unsigned CurrentWorker = 0;
} // namespace

struct ThreadPool::Worker {
  std::mutex M;
  std::deque<Task> Deque;
};

ThreadPool::ThreadPool(unsigned NumThreads) {
#if SAFEGEN_HAVE_THREADS
  unsigned HW = std::max(1u, std::thread::hardware_concurrency());
  unsigned N = NumThreads == 0 ? HW : NumThreads;
  if (N <= 1)
    return; // inline mode
  // Only the (cheap) deques are set up here; the OS threads spawn on the
  // first parallelFor that actually fans out. A pool that is constructed
  // but ends up running everything inline (the serial fallback in
  // aa::batch::run, short-lived benchmark pools) then costs no syscalls.
  Workers.reserve(N);
  for (unsigned I = 0; I < N; ++I)
    Workers.push_back(std::make_unique<Worker>());
#else
  (void)NumThreads;
#endif
}

void ThreadPool::ensureStarted() {
  std::lock_guard<std::mutex> Lock(WakeMutex);
  if (!Threads.empty() || ShuttingDown)
    return;
  unsigned N = static_cast<unsigned>(Workers.size());
  Threads.reserve(N);
  for (unsigned I = 0; I < N; ++I)
    Threads.emplace_back([this, I] { workerLoop(I); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(WakeMutex);
    ShuttingDown = true;
  }
  WakeCv.notify_all();
  for (std::thread &T : Threads)
    T.join();
  // Workers drain every stealable task before exiting, but queued work
  // can still be stranded when the OS threads were never spawned (a pool
  // that got submits but no parallelFor) or a submit raced shutdown. Run
  // the leftovers inline so every future returned by submit() becomes
  // ready — shutdown with queued work completes the work, never drops it.
  if (!Workers.empty()) {
    Task T;
    while (trySteal(0, T))
      runTask(T);
  }
}

unsigned ThreadPool::concurrency() const {
  return Workers.empty() ? 1u : static_cast<unsigned>(Workers.size());
}

void ThreadPool::runTask(Task &T) {
  if (T.Fn) {
    (*T.Fn)(); // packaged_task: exceptions land in the future
    return;
  }
  (*T.Job->Body)(T.Begin, T.End);
  std::lock_guard<std::mutex> Lock(T.Job->M);
  if (--T.Job->Remaining == 0)
    T.Job->Done.notify_all();
}

std::future<void> ThreadPool::submit(std::function<void()> Fn) {
  Task T;
  T.Fn = std::make_shared<std::packaged_task<void()>>(std::move(Fn));
  std::future<void> Result = T.Fn->get_future();
  if (Workers.empty()) {
    // Inline pool: run now. The future is ready before submit returns,
    // so callers cannot deadlock on it.
    (*T.Fn)();
    return Result;
  }
  unsigned Slot;
  if (CurrentPool == this) {
    // Re-entrant submit from a worker task: the submitter's own deque.
    Slot = CurrentWorker;
  } else {
    std::lock_guard<std::mutex> Lock(WakeMutex);
    Slot = NextSubmitWorker++ % static_cast<unsigned>(Workers.size());
  }
  {
    Worker &Target = *Workers[Slot % Workers.size()];
    std::lock_guard<std::mutex> Lock(Target.M);
    Target.Deque.push_back(std::move(T));
  }
  ensureStarted();
  WakeCv.notify_all();
  return Result;
}

bool ThreadPool::trySteal(unsigned Thief, Task &Out) {
  // Own deque first (back = most recently pushed, cache-warm), then the
  // victims' fronts in ring order.
  unsigned N = static_cast<unsigned>(Workers.size());
  {
    Worker &Own = *Workers[Thief % N];
    std::lock_guard<std::mutex> Lock(Own.M);
    if (!Own.Deque.empty()) {
      Out = Own.Deque.back();
      Own.Deque.pop_back();
      return true;
    }
  }
  for (unsigned Off = 1; Off < N; ++Off) {
    Worker &Victim = *Workers[(Thief + Off) % N];
    std::lock_guard<std::mutex> Lock(Victim.M);
    if (!Victim.Deque.empty()) {
      Out = Victim.Deque.front();
      Victim.Deque.pop_front();
      return true;
    }
  }
  return false;
}

void ThreadPool::workerLoop(unsigned Index) {
  CurrentPool = this;
  CurrentWorker = Index;
  for (;;) {
    Task T;
    if (trySteal(Index, T)) {
      runTask(T);
      continue;
    }
    std::unique_lock<std::mutex> Lock(WakeMutex);
    if (ShuttingDown)
      return;
    // Re-check for work under the wake lock to avoid a lost wakeup
    // between the failed steal and the wait.
    bool Pending = false;
    for (auto &W : Workers) {
      std::lock_guard<std::mutex> L(W->M);
      if (!W->Deque.empty()) {
        Pending = true;
        break;
      }
    }
    if (Pending)
      continue;
    WakeCv.wait(Lock);
  }
}

void ThreadPool::parallelFor(
    int64_t Begin, int64_t End, int64_t Grain,
    const std::function<void(int64_t, int64_t)> &Body) {
  parallelFor(Begin, End, Grain, /*Align=*/1, Body);
}

void ThreadPool::parallelFor(
    int64_t Begin, int64_t End, int64_t Grain, int64_t Align,
    const std::function<void(int64_t, int64_t)> &Body) {
  if (End <= Begin)
    return;
  Grain = std::max<int64_t>(1, Grain);
  Align = std::max<int64_t>(1, Align);
  int64_t Total = End - Begin;

  if (Workers.empty()) {
    // Inline mode: still chunk (callers rely on the chunk granularity to
    // bound per-chunk scratch memory), just sequentially.
    for (int64_t C = Begin; C < End; C += Grain)
      Body(C, std::min(End, C + Grain));
    return;
  }

  int64_t MaxChunks =
      static_cast<int64_t>(concurrency()) * ChunksPerWorker;
  int64_t NumChunks = std::min(MaxChunks, (Total + Grain - 1) / Grain);
  int64_t ChunkSize = (Total + NumChunks - 1) / NumChunks;
  // Round up so that chunk boundaries (relative to Begin) land on Align
  // multiples; only the final chunk may be ragged.
  ChunkSize = (ChunkSize + Align - 1) / Align * Align;

  ensureStarted();

  ParallelForJob Job;
  Job.Body = &Body;
  {
    std::lock_guard<std::mutex> Lock(Job.M);
    Job.Remaining = (Total + ChunkSize - 1) / ChunkSize;
  }
  int64_t C = Begin;
  for (unsigned W = 0; C < End; ++W, C += ChunkSize) {
    Task T{&Job, C, std::min(End, C + ChunkSize)};
    Worker &Target = *Workers[W % Workers.size()];
    std::lock_guard<std::mutex> Lock(Target.M);
    Target.Deque.push_back(T);
  }
  WakeCv.notify_all();

  // The caller participates: it steals chunks like a worker so that
  // nested parallelFor calls (a chunk body that itself fans out) cannot
  // deadlock, then blocks for the stragglers.
  Task T;
  while (trySteal(0, T))
    runTask(T);
  std::unique_lock<std::mutex> Lock(Job.M);
  Job.Done.wait(Lock, [&] { return Job.Remaining == 0; });
}

ThreadPool &ThreadPool::global() {
  static ThreadPool Pool(0);
  return Pool;
}
