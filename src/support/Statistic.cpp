//===- Statistic.cpp ------------------------------------------------------===//
//
// Part of the SafeGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "support/Statistic.h"

#include <sstream>

using namespace safegen;
using namespace safegen::support;

void StatsRegistry::add(const std::string &Name, uint64_t Delta,
                        const std::string &Description) {
  Entry &E = Counters[Name];
  if (E.Description.empty() && !Description.empty())
    E.Description = Description;
  E.Value += Delta;
}

uint64_t StatsRegistry::get(const std::string &Name) const {
  auto It = Counters.find(Name);
  return It == Counters.end() ? 0 : It->second.Value;
}

std::vector<StatisticValue> StatsRegistry::values() const {
  std::vector<StatisticValue> Out;
  Out.reserve(Counters.size());
  for (const auto &[Name, E] : Counters)
    Out.push_back({Name, E.Description, E.Value});
  return Out;
}

std::string StatsRegistry::render() const {
  std::ostringstream OS;
  for (const auto &[Name, E] : Counters) {
    OS << E.Value << "\t" << Name;
    if (!E.Description.empty())
      OS << " - " << E.Description;
    OS << "\n";
  }
  return OS.str();
}
