//===- TAC.h - Three-address-code transform ---------------------*- C++ -*-===//
//
// Part of the SafeGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The first step of the prioritization pipeline (paper Sec. VI-C, Fig. 6):
/// floating-point expressions are flattened so that every FP operation is
/// computed in its own statement into a fresh temporary. This gives each
/// computation-DAG node a unique statement (and source line) to which a
/// prioritization pragma can later be attached.
///
/// The transform is semantics-preserving: only FP-typed subexpressions of
/// arithmetic/call/cast kind are hoisted; integer index arithmetic,
/// lvalues and control flow are untouched.
///
//===----------------------------------------------------------------------===//

#ifndef SAFEGEN_ANALYSIS_TAC_H
#define SAFEGEN_ANALYSIS_TAC_H

#include "frontend/AST.h"

namespace safegen {
namespace analysis {

/// Rewrites \p F (in place, allocating new nodes from \p Ctx) into TAC
/// form. Returns the number of temporaries introduced.
unsigned toThreeAddressCode(frontend::FunctionDecl *F,
                            frontend::ASTContext &Ctx);

/// Applies the transform to every function definition in the TU.
unsigned toThreeAddressCode(frontend::ASTContext &Ctx);

} // namespace analysis
} // namespace safegen

#endif // SAFEGEN_ANALYSIS_TAC_H
