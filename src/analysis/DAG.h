//===- DAG.h - Computation DAG of a function --------------------*- C++ -*-===//
//
// Part of the SafeGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The computation DAG of Sec. VI: one node per floating-point operation
/// (after the TAC transform each has its own statement), plus source
/// nodes for the input variables. Edges are data dependencies. As in the
/// paper, loop-carried (circular) dependencies are dropped — the DAG
/// reflects one pass over the program text; definitions seen earlier in
/// program order feed uses seen later.
///
/// Arrays are modelled at whole-object granularity (a read of a[i][j]
/// depends on the last write to a), which is exactly the precision needed
/// to discover reuse of input matrices/vectors.
///
//===----------------------------------------------------------------------===//

#ifndef SAFEGEN_ANALYSIS_DAG_H
#define SAFEGEN_ANALYSIS_DAG_H

#include "frontend/AST.h"
#include "support/SourceLocation.h"

#include <string>
#include <vector>

namespace safegen {
namespace analysis {

/// One DAG node.
struct DAGNode {
  enum class Kind { Input, Op };
  Kind NodeKind = Kind::Op;
  /// Operation spelling for dumps ("+", "*", "call sqrt", or the input
  /// variable name).
  std::string Label;
  /// The variable this node's value is stored in (TAC temp or program
  /// variable); used by the annotator to name pragmas. Empty for inputs
  /// whose Label is the name.
  std::string ResultVar;
  /// Statement that computes this node (null for inputs).
  const frontend::Stmt *Origin = nullptr;
  SourceLocation Loc;
  /// Operand node ids (parents in the data-dependence sense: values this
  /// node consumes).
  std::vector<int> Operands;
};

/// The computation DAG. Node ids are indices; edges go operand -> user.
class DAG {
public:
  int addInput(const std::string &Name);
  int addOp(std::string Label, std::string ResultVar,
            const frontend::Stmt *Origin, SourceLocation Loc,
            std::vector<int> Operands);

  int size() const { return static_cast<int>(Nodes.size()); }
  const DAGNode &node(int Id) const { return Nodes[Id]; }
  DAGNode &node(int Id) { return Nodes[Id]; }

  /// Users of each node (successor lists), built lazily.
  const std::vector<std::vector<int>> &successors() const;

  /// Renders a Graphviz dump (debugging / examples).
  std::string dumpDot() const;

private:
  std::vector<DAGNode> Nodes;
  mutable std::vector<std::vector<int>> Succs;
};

/// Builds the computation DAG of \p F (expected in TAC form for best
/// node-to-statement mapping, but any form works).
DAG buildDAG(const frontend::FunctionDecl *F);

} // namespace analysis
} // namespace safegen

#endif // SAFEGEN_ANALYSIS_DAG_H
