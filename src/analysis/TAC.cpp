//===- TAC.cpp ------------------------------------------------------------===//
//
// Part of the SafeGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "analysis/TAC.h"

#include <cassert>
#include <string>
#include <vector>

using namespace safegen;
using namespace safegen::frontend;

namespace {

class TACRewriter {
public:
  TACRewriter(ASTContext &Ctx) : Ctx(Ctx) {}

  unsigned run(FunctionDecl *F) {
    if (!F->isDefinition())
      return 0;
    rewriteCompound(F->getBody());
    return NumTemps;
  }

private:
  /// True for expressions that may stay as operands of a TAC line.
  bool isAtom(const Expr *E) const {
    switch (E->getKind()) {
    case Expr::Kind::IntLiteral:
    case Expr::Kind::FloatLiteral:
    case Expr::Kind::DeclRef:
    case Expr::Kind::Subscript:
      return true;
    case Expr::Kind::Paren:
      return isAtom(static_cast<const ParenExpr *>(E)->getInner());
    case Expr::Kind::Cast:
      return isAtom(static_cast<const CastExpr *>(E)->getOperand());
    case Expr::Kind::Unary: {
      const auto *U = static_cast<const UnaryExpr *>(E);
      return (U->getOp() == UnaryOpKind::Minus ||
              U->getOp() == UnaryOpKind::Plus ||
              U->getOp() == UnaryOpKind::Deref) &&
             isAtom(U->getOperand());
    }
    default:
      return false;
    }
  }

  bool isFloatingOp(const Expr *E) const {
    return E->getType() && E->getType()->isFloating();
  }

  /// Hoists \p E into a fresh temporary appended to \p Out; returns the
  /// DeclRef replacement.
  Expr *hoist(Expr *E, std::vector<Stmt *> &Out) {
    std::string Name = "_sg_t" + std::to_string(NumTemps++);
    auto *Tmp = Ctx.create<VarDecl>(Name, E->getType(), E, E->getLoc());
    Out.push_back(Ctx.create<DeclStmt>(std::vector<VarDecl *>{Tmp},
                                       E->getLoc()));
    return Ctx.create<DeclRefExpr>(Tmp, Tmp->getType(), E->getLoc(), Name);
  }

  /// Flattens \p E: after return, the result is an atom or (when
  /// \p KeepTop) a single operation over atoms. Hoisted ops appended to
  /// \p Out.
  Expr *flatten(Expr *E, std::vector<Stmt *> &Out, bool KeepTop) {
    if (!E)
      return E;
    switch (E->getKind()) {
    case Expr::Kind::IntLiteral:
    case Expr::Kind::FloatLiteral:
      return E;
    case Expr::Kind::DeclRef:
      return E;
    case Expr::Kind::Paren: {
      auto *P = static_cast<ParenExpr *>(E);
      Expr *Inner = flatten(P->getInner(), Out, KeepTop);
      if (isAtom(Inner) || Inner != P->getInner())
        return Inner; // drop the now-redundant parens
      return E;
    }
    case Expr::Kind::Subscript: {
      auto *S = static_cast<SubscriptExpr *>(E);
      // Index arithmetic stays; only hoist FP subexpressions within it.
      Expr *Base = flatten(S->getBase(), Out, /*KeepTop=*/false);
      Expr *Index = flatten(S->getIndex(), Out, /*KeepTop=*/false);
      if (Base == S->getBase() && Index == S->getIndex())
        return E;
      return Ctx.create<SubscriptExpr>(Base, Index, E->getType(),
                                       E->getLoc());
    }
    case Expr::Kind::Unary: {
      auto *U = static_cast<UnaryExpr *>(E);
      Expr *Op = flatten(U->getOperand(), Out, /*KeepTop=*/false);
      if (Op == U->getOperand())
        return E;
      return Ctx.create<UnaryExpr>(U->getOp(), Op, E->getType(), E->getLoc());
    }
    case Expr::Kind::Cast: {
      auto *C = static_cast<CastExpr *>(E);
      Expr *Op = flatten(C->getOperand(), Out, /*KeepTop=*/false);
      if (Op == C->getOperand())
        return E;
      return Ctx.create<CastExpr>(Op, C->getType(), C->isImplicit(),
                                  E->getLoc());
    }
    case Expr::Kind::Binary: {
      auto *B = static_cast<BinaryExpr *>(E);
      bool Fp = isFloatingOp(E) && B->isArithmetic();
      Expr *L = flatten(B->getLhs(), Out, /*KeepTop=*/false);
      Expr *R = flatten(B->getRhs(), Out, /*KeepTop=*/false);
      Expr *New = (L == B->getLhs() && R == B->getRhs())
                      ? E
                      : Ctx.create<BinaryExpr>(B->getOp(), L, R, E->getType(),
                                               E->getLoc());
      if (Fp && !KeepTop)
        return hoist(New, Out);
      return New;
    }
    case Expr::Kind::Call: {
      auto *C = static_cast<CallExpr *>(E);
      std::vector<Expr *> Args;
      bool Changed = false;
      for (Expr *Arg : C->getArgs()) {
        Expr *NewArg = flatten(Arg, Out, /*KeepTop=*/false);
        Changed |= NewArg != Arg;
        Args.push_back(NewArg);
      }
      Expr *New = Changed ? Ctx.create<CallExpr>(C->getCallee(),
                                                 std::move(Args),
                                                 E->getType(), E->getLoc())
                          : E;
      if (isFloatingOp(E) && !KeepTop)
        return hoist(New, Out);
      return New;
    }
    case Expr::Kind::Assign: {
      auto *A = static_cast<AssignExpr *>(E);
      // Compound assignments count as one FP op; keep them whole.
      Expr *Rhs = flatten(A->getRhs(), Out,
                          /*KeepTop=*/A->getOp() == AssignOpKind::Assign);
      if (Rhs == A->getRhs())
        return E;
      return Ctx.create<AssignExpr>(A->getOp(), A->getLhs(), Rhs,
                                    E->getType(), E->getLoc());
    }
    case Expr::Kind::Conditional: {
      auto *C = static_cast<ConditionalExpr *>(E);
      // Branch bodies are not hoisted (that would change which side gets
      // evaluated); only the condition's operands are flattened.
      Expr *Cond = flatten(C->getCond(), Out, /*KeepTop=*/true);
      if (Cond == C->getCond())
        return E;
      return Ctx.create<ConditionalExpr>(Cond, C->getTrueExpr(),
                                         C->getFalseExpr(), E->getType(),
                                         E->getLoc());
    }
    }
    return E;
  }

  /// Rewrites a statement; any hoisted temporaries go to \p Out before it.
  Stmt *rewriteStmt(Stmt *S, std::vector<Stmt *> &Out) {
    switch (S->getKind()) {
    case Stmt::Kind::Compound:
      rewriteCompound(static_cast<CompoundStmt *>(S));
      return S;
    case Stmt::Kind::Decl: {
      auto *DS = static_cast<DeclStmt *>(S);
      for (VarDecl *D : DS->getDecls())
        if (D->getInit())
          D->setInit(flatten(D->getInit(), Out, /*KeepTop=*/true));
      return S;
    }
    case Stmt::Kind::Expr: {
      auto *ES = static_cast<ExprStmt *>(S);
      Expr *New = flatten(ES->getExpr(), Out, /*KeepTop=*/true);
      if (New == ES->getExpr())
        return S;
      return Ctx.create<ExprStmt>(New, S->getLoc());
    }
    case Stmt::Kind::Return: {
      auto *R = static_cast<ReturnStmt *>(S);
      if (!R->getValue())
        return S;
      Expr *New = flatten(R->getValue(), Out, /*KeepTop=*/true);
      if (New == R->getValue())
        return S;
      return Ctx.create<ReturnStmt>(New, S->getLoc());
    }
    case Stmt::Kind::If: {
      auto *If = static_cast<IfStmt *>(S);
      // The condition is evaluated once: safe to flatten its FP parts.
      Expr *Cond = flatten(If->getCond(), Out, /*KeepTop=*/true);
      Stmt *Then = rewriteBody(If->getThen());
      Stmt *Else = If->getElse() ? rewriteBody(If->getElse()) : nullptr;
      return Ctx.create<IfStmt>(Cond, Then, Else, S->getLoc());
    }
    case Stmt::Kind::For: {
      auto *For = static_cast<ForStmt *>(S);
      // Init runs once: temporaries may be hoisted before the loop.
      Stmt *Init =
          For->getInit() ? rewriteStmt(For->getInit(), Out) : nullptr;
      // Cond and Inc re-evaluate per iteration: left untouched.
      Stmt *Body = rewriteBody(For->getBody());
      return Ctx.create<ForStmt>(Init, For->getCond(), For->getInc(), Body,
                                 S->getLoc());
    }
    case Stmt::Kind::While: {
      auto *W = static_cast<WhileStmt *>(S);
      return Ctx.create<WhileStmt>(W->getCond(), rewriteBody(W->getBody()),
                                   S->getLoc());
    }
    case Stmt::Kind::DoWhile: {
      auto *D = static_cast<DoWhileStmt *>(S);
      return Ctx.create<DoWhileStmt>(rewriteBody(D->getBody()), D->getCond(),
                                     S->getLoc());
    }
    default:
      return S;
    }
  }

  /// Rewrites a loop/if body, wrapping in a compound when temporaries are
  /// needed.
  Stmt *rewriteBody(Stmt *Body) {
    if (!Body)
      return Body;
    if (Body->getKind() == Stmt::Kind::Compound) {
      rewriteCompound(static_cast<CompoundStmt *>(Body));
      return Body;
    }
    std::vector<Stmt *> Out;
    Stmt *New = rewriteStmt(Body, Out);
    if (Out.empty())
      return New;
    Out.push_back(New);
    return Ctx.create<CompoundStmt>(std::move(Out), Body->getLoc());
  }

  void rewriteCompound(CompoundStmt *C) {
    std::vector<Stmt *> NewBody;
    for (Stmt *S : C->getBody()) {
      std::vector<Stmt *> Hoisted;
      Stmt *New = rewriteStmt(S, Hoisted);
      for (Stmt *H : Hoisted)
        NewBody.push_back(H);
      NewBody.push_back(New);
    }
    C->getBody() = std::move(NewBody);
  }

  ASTContext &Ctx;
  unsigned NumTemps = 0;
};

} // namespace

unsigned analysis::toThreeAddressCode(FunctionDecl *F, ASTContext &Ctx) {
  TACRewriter R(Ctx);
  return R.run(F);
}

unsigned analysis::toThreeAddressCode(ASTContext &Ctx) {
  unsigned Total = 0;
  for (Decl *D : Ctx.tu().Decls)
    if (D->getKind() == Decl::Kind::Function)
      Total += toThreeAddressCode(static_cast<FunctionDecl *>(D), Ctx);
  return Total;
}
