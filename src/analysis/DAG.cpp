//===- DAG.cpp ------------------------------------------------------------===//
//
// Part of the SafeGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "analysis/DAG.h"
#include "frontend/ASTPrinter.h"

#include <cassert>
#include <sstream>
#include <unordered_map>

using namespace safegen;
using namespace safegen::frontend;
using namespace safegen::analysis;

int DAG::addInput(const std::string &Name) {
  DAGNode N;
  N.NodeKind = DAGNode::Kind::Input;
  N.Label = Name;
  N.ResultVar = Name;
  Nodes.push_back(std::move(N));
  Succs.clear();
  return size() - 1;
}

int DAG::addOp(std::string Label, std::string ResultVar, const Stmt *Origin,
               SourceLocation Loc, std::vector<int> Operands) {
  DAGNode N;
  N.NodeKind = DAGNode::Kind::Op;
  N.Label = std::move(Label);
  N.ResultVar = std::move(ResultVar);
  N.Origin = Origin;
  N.Loc = Loc;
  N.Operands = std::move(Operands);
  Nodes.push_back(std::move(N));
  Succs.clear();
  return size() - 1;
}

const std::vector<std::vector<int>> &DAG::successors() const {
  if (Succs.size() != Nodes.size()) {
    Succs.assign(Nodes.size(), {});
    for (int Id = 0; Id < size(); ++Id)
      for (int Op : Nodes[Id].Operands)
        Succs[Op].push_back(Id);
  }
  return Succs;
}

std::string DAG::dumpDot() const {
  std::ostringstream OS;
  OS << "digraph dag {\n";
  for (int Id = 0; Id < size(); ++Id) {
    const DAGNode &N = Nodes[Id];
    OS << "  n" << Id << " [label=\"" << Id << ": " << N.Label;
    if (!N.ResultVar.empty() && N.ResultVar != N.Label)
      OS << " -> " << N.ResultVar;
    OS << "\"";
    if (N.NodeKind == DAGNode::Kind::Input)
      OS << " shape=box";
    OS << "];\n";
    for (int Op : N.Operands)
      OS << "  n" << Op << " -> n" << Id << ";\n";
  }
  OS << "}\n";
  return OS.str();
}

namespace {

/// Walks a (TAC'd) function, tracking the defining node of every value
/// name, and emits one node per FP operation.
class DAGBuilder {
public:
  explicit DAGBuilder(const FunctionDecl *F) : F(F) {}

  DAG build() {
    for (const VarDecl *P : F->getParams())
      if (isTracked(P->getType()))
        Defs[P->getName()] = G.addInput(P->getName());
    if (F->isDefinition())
      visitStmt(F->getBody());
    return std::move(G);
  }

private:
  /// Values that participate in FP dataflow: FP scalars and FP
  /// arrays/pointers (whole-object granularity).
  static bool isTracked(const Type *T) {
    if (!T)
      return false;
    if (T->isFloating())
      return true;
    if (T->isPointer() || T->isArray())
      return isTracked(T->getElement());
    return false;
  }

  /// Node currently defining \p Name; creates an input node on first use
  /// (globals, or values live-in across ignored control flow).
  int nodeFor(const std::string &Name) {
    auto It = Defs.find(Name);
    if (It != Defs.end())
      return It->second;
    int Id = G.addInput(Name);
    Defs[Name] = Id;
    return Id;
  }

  /// Returns the defining node of an expression's value, emitting Op
  /// nodes for FP operations; -1 when the expression carries no FP data.
  int visitExpr(const Expr *E, const Stmt *Origin) {
    if (!E)
      return -1;
    switch (E->getKind()) {
    case Expr::Kind::IntLiteral:
      return -1;
    case Expr::Kind::FloatLiteral:
      return -1; // constants create no reuse
    case Expr::Kind::DeclRef: {
      const auto *Ref = static_cast<const DeclRefExpr *>(E);
      if (!isTracked(E->getType()))
        return -1;
      return nodeFor(Ref->getName());
    }
    case Expr::Kind::Paren:
      return visitExpr(static_cast<const ParenExpr *>(E)->getInner(), Origin);
    case Expr::Kind::Cast:
      return visitExpr(static_cast<const CastExpr *>(E)->getOperand(),
                       Origin);
    case Expr::Kind::Unary:
      return visitExpr(static_cast<const UnaryExpr *>(E)->getOperand(),
                       Origin);
    case Expr::Kind::Subscript: {
      // A load from an array: depends on the array object.
      const auto *S = static_cast<const SubscriptExpr *>(E);
      visitExpr(S->getIndex(), Origin);
      return visitExpr(S->getBase(), Origin);
    }
    case Expr::Kind::Binary: {
      const auto *B = static_cast<const BinaryExpr *>(E);
      int L = visitExpr(B->getLhs(), Origin);
      int R = visitExpr(B->getRhs(), Origin);
      if (!B->isArithmetic() || !E->getType() || !E->getType()->isFloating())
        return -1; // comparisons etc. consume but define nothing tracked
      std::vector<int> Ops;
      if (L >= 0)
        Ops.push_back(L);
      if (R >= 0)
        Ops.push_back(R);
      if (Ops.empty())
        return -1;
      return G.addOp(binaryOpSpelling(B->getOp()), "", Origin, E->getLoc(),
                     std::move(Ops));
    }
    case Expr::Kind::Call: {
      const auto *C = static_cast<const CallExpr *>(E);
      std::vector<int> Ops;
      for (const Expr *Arg : C->getArgs()) {
        int Id = visitExpr(Arg, Origin);
        if (Id >= 0)
          Ops.push_back(Id);
      }
      if (!E->getType() || !E->getType()->isFloating() || Ops.empty())
        return -1;
      return G.addOp("call " + C->getCallee(), "", Origin, E->getLoc(),
                     std::move(Ops));
    }
    case Expr::Kind::Assign: {
      const auto *A = static_cast<const AssignExpr *>(E);
      int R = visitExpr(A->getRhs(), Origin);
      // Compound assignments are an op of (lhs-old, rhs).
      if (A->getOp() != AssignOpKind::Assign) {
        int LOld = visitExpr(A->getLhs(), Origin);
        std::vector<int> Ops;
        if (LOld >= 0)
          Ops.push_back(LOld);
        if (R >= 0)
          Ops.push_back(R);
        if (!Ops.empty())
          R = G.addOp(assignOpSpelling(A->getOp()), "", Origin, E->getLoc(),
                      std::move(Ops));
      }
      recordStore(A->getLhs(), R, Origin);
      return R;
    }
    case Expr::Kind::Conditional: {
      const auto *C = static_cast<const ConditionalExpr *>(E);
      visitExpr(C->getCond(), Origin);
      int T = visitExpr(C->getTrueExpr(), Origin);
      int FE = visitExpr(C->getFalseExpr(), Origin);
      return T >= 0 ? T : FE;
    }
    }
    return -1;
  }

  /// Resolves the stored-to name of an lvalue (variable or array object).
  static const DeclRefExpr *lvalueBase(const Expr *E) {
    switch (E->getKind()) {
    case Expr::Kind::DeclRef:
      return static_cast<const DeclRefExpr *>(E);
    case Expr::Kind::Paren:
      return lvalueBase(static_cast<const ParenExpr *>(E)->getInner());
    case Expr::Kind::Subscript:
      return lvalueBase(static_cast<const SubscriptExpr *>(E)->getBase());
    case Expr::Kind::Unary: {
      const auto *U = static_cast<const UnaryExpr *>(E);
      if (U->getOp() == UnaryOpKind::Deref)
        return lvalueBase(U->getOperand());
      return nullptr;
    }
    default:
      return nullptr;
    }
  }

  void recordStore(const Expr *Lhs, int ValueNode, const Stmt *Origin) {
    const DeclRefExpr *Base = lvalueBase(Lhs);
    if (!Base || ValueNode < 0 || !isTracked(Base->getType()))
      return;
    const std::string &Name = Base->getName();
    if (Lhs->getKind() == Expr::Kind::DeclRef) {
      // Whole-variable redefinition.
      Defs[Name] = ValueNode;
      if (G.node(ValueNode).ResultVar.empty())
        G.node(ValueNode).ResultVar = Name;
      return;
    }
    // Partial (element) store: the array now depends on both its previous
    // contents and the stored value — model as a merge node.
    int Prev = nodeFor(Name);
    int Merge = G.addOp("store " + Name, Name, Origin,
                        Lhs->getLoc(), {Prev, ValueNode});
    Defs[Name] = Merge;
  }

  void visitStmt(const Stmt *S) {
    if (!S)
      return;
    switch (S->getKind()) {
    case Stmt::Kind::Compound:
      for (const Stmt *Child : static_cast<const CompoundStmt *>(S)->getBody())
        visitStmt(Child);
      return;
    case Stmt::Kind::Decl: {
      const auto *DS = static_cast<const DeclStmt *>(S);
      for (const VarDecl *D : DS->getDecls()) {
        if (!D->getInit())
          continue;
        int Id = visitExpr(D->getInit(), S);
        if (Id >= 0 && isTracked(D->getType())) {
          Defs[D->getName()] = Id;
          if (G.node(Id).ResultVar.empty())
            G.node(Id).ResultVar = D->getName();
          if (!G.node(Id).Origin)
            G.node(Id).Origin = S;
        }
      }
      return;
    }
    case Stmt::Kind::Expr:
      visitExpr(static_cast<const ExprStmt *>(S)->getExpr(), S);
      return;
    case Stmt::Kind::If: {
      const auto *If = static_cast<const IfStmt *>(S);
      visitExpr(If->getCond(), S);
      visitStmt(If->getThen());
      visitStmt(If->getElse());
      return;
    }
    case Stmt::Kind::For: {
      const auto *For = static_cast<const ForStmt *>(S);
      visitStmt(For->getInit());
      if (For->getCond())
        visitExpr(For->getCond(), S);
      visitStmt(For->getBody());
      if (For->getInc())
        visitExpr(For->getInc(), S);
      return;
    }
    case Stmt::Kind::While: {
      const auto *W = static_cast<const WhileStmt *>(S);
      visitExpr(W->getCond(), S);
      visitStmt(W->getBody());
      return;
    }
    case Stmt::Kind::DoWhile: {
      const auto *D = static_cast<const DoWhileStmt *>(S);
      visitStmt(D->getBody());
      visitExpr(D->getCond(), S);
      return;
    }
    case Stmt::Kind::Return:
      visitExpr(static_cast<const ReturnStmt *>(S)->getValue(), S);
      return;
    case Stmt::Kind::Break:
    case Stmt::Kind::Continue:
    case Stmt::Kind::Null:
    case Stmt::Kind::Pragma:
      return;
    }
  }

  const FunctionDecl *F;
  DAG G;
  std::unordered_map<std::string, int> Defs;
};

} // namespace

DAG analysis::buildDAG(const FunctionDecl *F) {
  DAGBuilder B(F);
  return B.build();
}
