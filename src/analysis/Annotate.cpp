//===- Annotate.cpp -------------------------------------------------------===//
//
// Part of the SafeGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Annotate.h"
#include "analysis/TAC.h"

#include <map>
#include <set>

using namespace safegen;
using namespace safegen::frontend;
using namespace safegen::analysis;

namespace {

/// Inserts the pragmas of \p Before ahead of their statements, walking
/// all compound bodies.
class PragmaInserter {
public:
  PragmaInserter(ASTContext &Ctx,
                 const std::map<const Stmt *, std::set<std::string>> &Before)
      : Ctx(Ctx), Before(Before) {}

  unsigned run(FunctionDecl *F) {
    if (F->isDefinition())
      visitCompound(F->getBody());
    return Inserted;
  }

private:
  void visitCompound(CompoundStmt *C) {
    std::vector<Stmt *> NewBody;
    for (Stmt *S : C->getBody()) {
      auto It = Before.find(S);
      if (It != Before.end())
        for (const std::string &Var : It->second) {
          NewBody.push_back(Ctx.create<PragmaStmt>(
              "#pragma safegen prioritize(" + Var + ")", S->getLoc()));
          ++Inserted;
        }
      NewBody.push_back(S);
      visitChildren(S);
    }
    C->getBody() = std::move(NewBody);
  }

  void visitChildren(Stmt *S) {
    switch (S->getKind()) {
    case Stmt::Kind::Compound:
      visitCompound(static_cast<CompoundStmt *>(S));
      return;
    case Stmt::Kind::If: {
      auto *If = static_cast<IfStmt *>(S);
      if (If->getThen())
        visitChildren(If->getThen());
      if (If->getElse())
        visitChildren(If->getElse());
      return;
    }
    case Stmt::Kind::For: {
      auto *For = static_cast<ForStmt *>(S);
      if (For->getBody())
        visitChildren(For->getBody());
      return;
    }
    case Stmt::Kind::While:
      visitChildren(static_cast<WhileStmt *>(S)->getBody());
      return;
    case Stmt::Kind::DoWhile:
      visitChildren(static_cast<DoWhileStmt *>(S)->getBody());
      return;
    default:
      return;
    }
  }

  ASTContext &Ctx;
  const std::map<const Stmt *, std::set<std::string>> &Before;
  unsigned Inserted = 0;
};

} // namespace

unsigned analysis::annotatePriorities(FunctionDecl *F, ASTContext &Ctx,
                                      const DAG &G,
                                      const ReuseResult &Result) {
  if (!Result.Feasible)
    return 0;
  std::vector<int> Profit = reuseProfits(G);

  // Invert π: protected symbols per node, P_v = {s : v in π(s)}.
  std::map<int, std::set<int>> PerNode;
  for (const auto &[S, Nodes] : Result.Assignment)
    for (int V : Nodes)
      PerNode[V].insert(S);

  // Heuristic of Sec. VI-C: at each node v prioritize the symbols of one
  // variable only — the generator of the highest-profit symbol in P_v.
  std::map<const Stmt *, std::set<std::string>> Before;
  for (const auto &[V, Symbols] : PerNode) {
    const DAGNode &Node = G.node(V);
    if (!Node.Origin)
      continue; // input nodes need no pragma
    int BestS = -1;
    for (int S : Symbols)
      if (BestS < 0 || Profit[S] > Profit[BestS])
        BestS = S;
    if (BestS < 0)
      continue;
    const std::string &Var = G.node(BestS).ResultVar.empty()
                                 ? G.node(BestS).Label
                                 : G.node(BestS).ResultVar;
    if (Var.empty())
      continue;
    Before[Node.Origin].insert(Var);
  }
  if (Before.empty())
    return 0;
  PragmaInserter Inserter(Ctx, Before);
  return Inserter.run(F);
}

AnalysisReport analysis::analyzeAndAnnotate(FunctionDecl *F, ASTContext &Ctx,
                                            int K,
                                            const MaxReuseOptions *Override) {
  unsigned Temps = toThreeAddressCode(F, Ctx);
  AnalysisReport Report = annotateFromTAC(F, Ctx, K, Override);
  Report.TempsIntroduced = Temps;
  return Report;
}

AnalysisReport analysis::annotateFromTAC(FunctionDecl *F, ASTContext &Ctx,
                                         int K,
                                         const MaxReuseOptions *Override) {
  AnalysisReport Report;
  DAG G = buildDAG(F);
  Report.DAGNodes = G.size();
  MaxReuseOptions Opts;
  if (Override)
    Opts = *Override;
  Opts.K = K;
  ReuseResult Result = solveMaxReuse(G, Opts);
  Report.ReusePairs = static_cast<int>(Result.Pairs.size());
  Report.TotalProfit = Result.TotalProfit;
  Report.Optimal = Result.Optimal;
  Report.Feasible = Result.Feasible;
  Report.PragmasInserted = annotatePriorities(F, Ctx, G, Result);
  return Report;
}
