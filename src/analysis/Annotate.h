//===- Annotate.h - Pragma insertion from the analysis ----------*- C++ -*-===//
//
// Part of the SafeGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The final step of the prioritization pipeline (Sec. VI-C, Fig. 6):
/// given a priority assignment π over the computation DAG, selects for
/// each operation the single most profitable variable to prioritize (the
/// paper's heuristic to avoid gathering symbols from several variables)
/// and inserts `#pragma safegen prioritize(<var>)` before that
/// operation's statement. The SafeGen rewriter later lowers each pragma
/// to an aa::prioritize() runtime call.
///
//===----------------------------------------------------------------------===//

#ifndef SAFEGEN_ANALYSIS_ANNOTATE_H
#define SAFEGEN_ANALYSIS_ANNOTATE_H

#include "analysis/DAG.h"
#include "analysis/Reuse.h"
#include "frontend/AST.h"

namespace safegen {
namespace analysis {

/// Inserts prioritization pragmas into \p F according to \p Result.
/// Returns the number of pragmas inserted.
unsigned annotatePriorities(frontend::FunctionDecl *F,
                            frontend::ASTContext &Ctx, const DAG &G,
                            const ReuseResult &Result);

/// The whole preprocessing pipeline of Fig. 6 on one function:
/// TAC transform -> DAG -> max-reuse -> pragma annotation.
struct AnalysisReport {
  unsigned TempsIntroduced = 0;
  unsigned PragmasInserted = 0;
  int DAGNodes = 0;
  int ReusePairs = 0;
  double TotalProfit = 0.0;
  bool Optimal = false;
  bool Feasible = false;
};

AnalysisReport analyzeAndAnnotate(frontend::FunctionDecl *F,
                                  frontend::ASTContext &Ctx, int K,
                                  const MaxReuseOptions *OptsOverride =
                                      nullptr);

/// The analysis tail of Fig. 6 — DAG -> max-reuse -> pragma annotation —
/// on a function that is *already* in three-address form (see
/// analysis/TAC.h). The pass pipeline runs the TAC transform as its own
/// stage and then calls this; the returned report's TempsIntroduced is
/// left at 0 for the caller to fill in.
AnalysisReport annotateFromTAC(frontend::FunctionDecl *F,
                               frontend::ASTContext &Ctx, int K,
                               const MaxReuseOptions *OptsOverride = nullptr);

} // namespace analysis
} // namespace safegen

#endif // SAFEGEN_ANALYSIS_ANNOTATE_H
