//===- Reuse.cpp ----------------------------------------------------------===//
//
// Part of the SafeGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Reuse.h"
#include "ilp/BranchBound.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <map>

using namespace safegen;
using namespace safegen::analysis;

namespace {

/// Simple dynamic bitset (one per node is enough at these sizes).
class BitVec {
public:
  explicit BitVec(int Bits = 0) : Words((Bits + 63) / 64, 0) {}
  void set(int I) { Words[I >> 6] |= 1ull << (I & 63); }
  bool test(int I) const { return (Words[I >> 6] >> (I & 63)) & 1; }
  void orWith(const BitVec &O) {
    for (size_t W = 0; W < Words.size(); ++W)
      Words[W] |= O.Words[W];
  }
  int count() const {
    int C = 0;
    for (uint64_t W : Words)
      C += __builtin_popcountll(W);
    return C;
  }

private:
  std::vector<uint64_t> Words;
};

/// Ancestor bitsets: node ids are topological (operands are created
/// before their users), so one forward pass suffices.
std::vector<BitVec> ancestorSets(const DAG &G) {
  std::vector<BitVec> Anc(G.size(), BitVec(G.size()));
  for (int Id = 0; Id < G.size(); ++Id)
    for (int Op : G.node(Id).Operands) {
      Anc[Id].set(Op);
      Anc[Id].orWith(Anc[Op]);
    }
  return Anc;
}

/// Shortest path S -> Target along DAG edges (operand -> user); returns
/// the node sequence excluding S, including Target. Empty if unreachable.
std::vector<int> shortestPath(const DAG &G, int S, int Target) {
  if (S == Target)
    return {};
  const auto &Succs = G.successors();
  std::vector<int> Prev(G.size(), -2);
  std::deque<int> Queue{S};
  Prev[S] = -1;
  while (!Queue.empty()) {
    int Cur = Queue.front();
    Queue.pop_front();
    if (Cur == Target)
      break;
    for (int Next : Succs[Cur])
      if (Prev[Next] == -2) {
        Prev[Next] = Cur;
        Queue.push_back(Next);
      }
  }
  if (Prev[Target] == -2)
    return {};
  std::vector<int> Path;
  for (int Cur = Target; Cur != S; Cur = Prev[Cur])
    Path.push_back(Cur);
  std::reverse(Path.begin(), Path.end());
  return Path;
}

} // namespace

std::vector<int> analysis::reuseProfits(const DAG &G) {
  std::vector<BitVec> Anc = ancestorSets(G);
  std::vector<int> Profit(G.size());
  for (int Id = 0; Id < G.size(); ++Id)
    Profit[Id] = Anc[Id].count() + 1; // Def. 3: ancestors including s
  return Profit;
}

std::vector<ReuseConnection> analysis::findReuseConnections(const DAG &G,
                                                            int MaxPerPair) {
  std::vector<BitVec> Anc = ancestorSets(G);
  std::vector<ReuseConnection> Pairs;
  for (int T = 0; T < G.size(); ++T) {
    // Distinct parents only.
    std::vector<int> Parents = G.node(T).Operands;
    std::sort(Parents.begin(), Parents.end());
    Parents.erase(std::unique(Parents.begin(), Parents.end()), Parents.end());
    if (Parents.size() < 2)
      continue;
    for (int S = 0; S < G.size(); ++S) {
      // Parents of T reachable from S (S itself counts, Def. 1 allows the
      // trivial path).
      std::vector<int> Reached;
      for (int P : Parents)
        if (P == S || Anc[P].test(S))
          Reached.push_back(P);
      if (Reached.size() < 2)
        continue;
      // One connection per parent pair, in canonical (shortest-path)
      // form, up to MaxPerPair distinct ones (Sec. VI-B extension).
      int Emitted = 0;
      std::vector<std::vector<int>> Seen;
      for (size_t I = 0; I < Reached.size() && Emitted < MaxPerPair; ++I) {
        for (size_t J = I + 1;
             J < Reached.size() && Emitted < MaxPerPair; ++J) {
          std::vector<int> Path1 = shortestPath(G, S, Reached[I]);
          std::vector<int> Path2 = shortestPath(G, S, Reached[J]);
          ReuseConnection RC;
          RC.S = S;
          RC.T = T;
          RC.Connection = Path1;
          RC.Connection.insert(RC.Connection.end(), Path2.begin(),
                               Path2.end());
          std::sort(RC.Connection.begin(), RC.Connection.end());
          RC.Connection.erase(
              std::unique(RC.Connection.begin(), RC.Connection.end()),
              RC.Connection.end());
          if (std::find(Seen.begin(), Seen.end(), RC.Connection) !=
              Seen.end())
            continue; // same node set through another parent pair
          Seen.push_back(RC.Connection);
          Pairs.push_back(std::move(RC));
          ++Emitted;
        }
      }
    }
  }
  return Pairs;
}

ReuseResult analysis::solveMaxReuse(const DAG &G,
                                    const MaxReuseOptions &Opts) {
  ReuseResult Result;
  Result.Pairs =
      findReuseConnections(G, std::max(1, Opts.MaxConnectionsPerPair));
  if (Result.Pairs.empty() || Opts.K < 2)
    return Result;
  std::vector<int> Profit = reuseProfits(G);

  // Alternative connections of the same (s,t) pair: at most one of them
  // may be realized (the profit is per pair, Def. 4).
  std::map<std::pair<int, int>, std::vector<int>> Alternatives;
  for (size_t I = 0; I < Result.Pairs.size(); ++I)
    Alternatives[{Result.Pairs[I].S, Result.Pairs[I].T}].push_back(
        static_cast<int>(I));

  // Variable layout: q_i per pair, then p_{(s,v)} per protection slot.
  std::map<std::pair<int, int>, int> PVar; // (s, v) -> var index
  int NumQ = static_cast<int>(Result.Pairs.size());
  int NextVar = NumQ;
  for (const ReuseConnection &RC : Result.Pairs)
    for (int V : RC.Connection) {
      auto Key = std::make_pair(RC.S, V);
      if (!PVar.count(Key))
        PVar[Key] = NextVar++;
    }

  const bool UseILP = NextVar <= Opts.MaxILPVariables;
  if (UseILP) {
    ilp::BinaryProgram BP;
    BP.NumVars = NextVar;
    BP.Objective.assign(NextVar, 0.0);
    for (int I = 0; I < NumQ; ++I)
      BP.Objective[I] = Profit[Result.Pairs[I].S];
    // Tiny penalty on protections so π stays minimal.
    for (const auto &[Key, Var] : PVar)
      BP.Objective[Var] = -1e-6;
    // q_i <= p_{s_i, v} for every v in the connection.
    for (int I = 0; I < NumQ; ++I)
      for (int V : Result.Pairs[I].Connection) {
        std::vector<double> Row(NextVar, 0.0);
        Row[I] = 1.0;
        Row[PVar[{Result.Pairs[I].S, V}]] = -1.0;
        BP.addConstraint(std::move(Row), 0.0);
      }
    // At most one realized connection per (s,t) pair.
    for (const auto &[Key, Indices] : Alternatives) {
      if (Indices.size() < 2)
        continue;
      std::vector<double> Row(NextVar, 0.0);
      for (int I : Indices)
        Row[I] = 1.0;
      BP.addConstraint(std::move(Row), 1.0);
    }
    // Capacity: sum_s p_{s,v} <= K-1 per node v.
    std::map<int, std::vector<int>> VarsPerNode;
    for (const auto &[Key, Var] : PVar)
      VarsPerNode[Key.second].push_back(Var);
    for (const auto &[V, Vars] : VarsPerNode) {
      if (static_cast<int>(Vars.size()) <= Opts.K - 1)
        continue; // constraint can never bind
      std::vector<double> Row(NextVar, 0.0);
      for (int Var : Vars)
        Row[Var] = 1.0;
      BP.addConstraint(std::move(Row), Opts.K - 1);
    }
    ilp::BBOptions BBOpts;
    BBOpts.MaxNodes = Opts.MaxILPNodes;
    ilp::ILPSolution Sol = ilp::solveBinaryProgram(BP, BBOpts);
    if (Sol.Status != ilp::ILPStatus::Infeasible) {
      Result.Optimal = Sol.Status == ilp::ILPStatus::Optimal;
      for (int I = 0; I < NumQ; ++I)
        if (Sol.X[I]) {
          Result.RealizedPairs.push_back(I);
          Result.TotalProfit += Profit[Result.Pairs[I].S];
        }
      for (const auto &[Key, Var] : PVar)
        if (Sol.X[Var])
          Result.Assignment[Key.first].insert(Key.second);
      Result.Feasible = !Result.RealizedPairs.empty();
      return Result;
    }
    // Fall through to greedy on solver failure.
  }

  // Greedy fallback: take pairs in decreasing profit, respecting the
  // per-node capacity; shared (s, v) protections are counted once.
  std::vector<int> Order(NumQ);
  for (int I = 0; I < NumQ; ++I)
    Order[I] = I;
  std::sort(Order.begin(), Order.end(), [&](int A, int B) {
    return Profit[Result.Pairs[A].S] > Profit[Result.Pairs[B].S];
  });
  std::map<int, std::set<int>> ProtectedAt; // v -> set of s
  std::set<std::pair<int, int>> Realized;   // (s,t) pairs already counted
  for (int I : Order) {
    const ReuseConnection &RC = Result.Pairs[I];
    if (Realized.count({RC.S, RC.T}))
      continue; // an alternative connection already realized this pair
    bool Ok = true;
    for (int V : RC.Connection) {
      const auto &Set = ProtectedAt[V];
      if (!Set.count(RC.S) &&
          static_cast<int>(Set.size()) >= Opts.K - 1) {
        Ok = false;
        break;
      }
    }
    if (!Ok)
      continue;
    for (int V : RC.Connection) {
      ProtectedAt[V].insert(RC.S);
      Result.Assignment[RC.S].insert(V);
    }
    Result.RealizedPairs.push_back(I);
    Realized.insert({RC.S, RC.T});
    Result.TotalProfit += Profit[RC.S];
  }
  Result.Feasible = !Result.RealizedPairs.empty();
  Result.Optimal = false;
  return Result;
}
