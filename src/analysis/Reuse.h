//===- Reuse.h - Max reuse problem (paper Sec. VI) --------------*- C++ -*-===//
//
// Part of the SafeGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The static analysis that decides which error symbols to protect from
/// fusion. Implements, over the computation DAG:
///
///  * reuse detection (Def. 1): s is reused at t when two distinct
///    parents of t are reachable from s; the canonical *reuse connection*
///    is the union of two such paths minus {s};
///  * reuse profit (Def. 3): ρ(s) = #ancestors(s) + 1;
///  * the max reuse problem (Defs. 2-4 + capacity constraint):
///    maximize Σ ρ(s)·[s realized] s.t. every node protects ≤ k-1 symbols
///    — encoded as the 0/1 ILP of Sec. VI-B and solved exactly by branch
///    and bound, with a greedy profit-density fallback when the instance
///    exceeds the budget (the paper's Gurobi plays this role).
///
//===----------------------------------------------------------------------===//

#ifndef SAFEGEN_ANALYSIS_REUSE_H
#define SAFEGEN_ANALYSIS_REUSE_H

#include "analysis/DAG.h"

#include <map>
#include <set>
#include <vector>

namespace safegen {
namespace analysis {

/// One reuse opportunity: symbol ε_s can cancel at node T if it is kept
/// alive along Connection (Def. 1: the union of two s→parent-of-T paths,
/// without s itself).
struct ReuseConnection {
  int S = -1;
  int T = -1;
  std::vector<int> Connection; ///< sorted node ids
};

/// π: for each source node s, the set of nodes that must protect ε_s.
using PriorityAssignment = std::map<int, std::set<int>>;

/// Result of the analysis.
struct ReuseResult {
  std::vector<ReuseConnection> Pairs; ///< all (s,t) with a connection
  PriorityAssignment Assignment;      ///< chosen π
  std::vector<int> RealizedPairs;     ///< indices into Pairs honoured by π
  double TotalProfit = 0.0;           ///< ρ_tot(π), Eq. (7)
  bool Optimal = false;               ///< proven optimal by the ILP
  bool Feasible = false;              ///< any prioritization found at all
};

/// Computes ρ(s) for every node (ancestor count + 1, Def. 3).
std::vector<int> reuseProfits(const DAG &G);

/// Enumerates the reuse pairs of \p G. With \p MaxPerPair == 1 each pair
/// (s,t) gets one canonical (shortest-path) connection — the paper's
/// default. Larger values enumerate alternative connections through
/// different parent pairs of t, the ILP extension the paper sketches in
/// Sec. VI-B ("the model can also be extended to consider two or more
/// reuse connections between two nodes"): the solver then *chooses* which
/// connection to realize, and at most one per (s,t) counts toward the
/// profit.
std::vector<ReuseConnection> findReuseConnections(const DAG &G,
                                                  int MaxPerPair = 1);

struct MaxReuseOptions {
  int K = 16;            ///< symbol budget: each node protects <= K-1
  int MaxILPVariables = 400; ///< above this, use the greedy fallback
  int MaxILPNodes = 20000;   ///< branch-and-bound budget
  int MaxConnectionsPerPair = 1; ///< Sec. VI-B extension when > 1
};

/// Solves the max reuse problem for \p G.
ReuseResult solveMaxReuse(const DAG &G, const MaxReuseOptions &Opts);

} // namespace analysis
} // namespace safegen

#endif // SAFEGEN_ANALYSIS_REUSE_H
