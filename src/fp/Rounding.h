//===- Rounding.h - IEEE-754 directed rounding control ----------*- C++ -*-===//
//
// Part of the SafeGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Control of the FPU rounding mode and the directed-rounding primitives the
/// whole sound runtime is built on.
///
/// Convention (paper Sec. II, footnote 1): all sound interval/affine
/// operations execute with the FPU (both x87/SSE control words via
/// fesetround) set to round **upward**. Downward-rounded results are then
/// obtained with the identity RD(x) = -RU(-x), which avoids flipping the
/// rounding mode inside hot loops. Every function in this header that is
/// documented as "requires upward mode" asserts that contract in debug
/// builds.
///
/// The library must be compiled with -frounding-math so the compiler cannot
/// constant-fold or reassociate floating-point expressions across the mode
/// switch.
///
//===----------------------------------------------------------------------===//

#ifndef SAFEGEN_FP_ROUNDING_H
#define SAFEGEN_FP_ROUNDING_H

#include <cassert>
#include <cfenv>

namespace safegen {
namespace fp {

/// True when the FPU currently rounds toward +infinity.
inline bool isRoundingUpward() { return std::fegetround() == FE_UPWARD; }

/// RAII scope that switches the FPU to round-upward and restores the
/// previous mode on destruction. All sound computations run inside one.
class RoundUpwardScope {
public:
  RoundUpwardScope() : SavedMode(std::fegetround()) {
    std::fesetround(FE_UPWARD);
  }
  ~RoundUpwardScope() { std::fesetround(SavedMode); }

  RoundUpwardScope(const RoundUpwardScope &) = delete;
  RoundUpwardScope &operator=(const RoundUpwardScope &) = delete;

private:
  int SavedMode;
};

/// RAII scope that switches the FPU to round-to-nearest. Used by the test
/// reference evaluators (error-free transforms are exact only in RN).
class RoundNearestScope {
public:
  RoundNearestScope() : SavedMode(std::fegetround()) {
    std::fesetround(FE_TONEAREST);
  }
  ~RoundNearestScope() { std::fesetround(SavedMode); }

  RoundNearestScope(const RoundNearestScope &) = delete;
  RoundNearestScope &operator=(const RoundNearestScope &) = delete;

private:
  int SavedMode;
};

#ifndef NDEBUG
#define SAFEGEN_ASSERT_ROUND_UP()                                            \
  assert(::safegen::fp::isRoundingUpward() &&                                \
         "sound primitive called outside a RoundUpwardScope")
#else
#define SAFEGEN_ASSERT_ROUND_UP() ((void)0)
#endif

/// \name Upward-rounded primitives. Require upward mode.
/// @{
inline double addRU(double A, double B) {
  SAFEGEN_ASSERT_ROUND_UP();
  return A + B;
}
inline double subRU(double A, double B) {
  SAFEGEN_ASSERT_ROUND_UP();
  return A - B;
}
inline double mulRU(double A, double B) {
  SAFEGEN_ASSERT_ROUND_UP();
  return A * B;
}
inline double divRU(double A, double B) {
  SAFEGEN_ASSERT_ROUND_UP();
  return A / B;
}
/// @}

/// \name Downward-rounded primitives via RD(x) = -RU(-x). Require upward
/// mode.
/// @{
inline double addRD(double A, double B) {
  SAFEGEN_ASSERT_ROUND_UP();
  return -((-A) + (-B));
}
inline double subRD(double A, double B) {
  SAFEGEN_ASSERT_ROUND_UP();
  return -((-A) + B);
}
inline double mulRD(double A, double B) {
  SAFEGEN_ASSERT_ROUND_UP();
  return -((-A) * B);
}
inline double divRD(double A, double B) {
  SAFEGEN_ASSERT_ROUND_UP();
  return -((-A) / B);
}
/// @}

/// Upward-rounded bound on the round-off of the upward addition A+B, i.e.
/// RU(A+B) - RD(A+B) (Eq. (4), one term). Requires upward mode. The result
/// is always >= 0 and finite unless the sum overflows.
inline double addErrBound(double A, double B) {
  return addRU(A, B) - addRD(A, B);
}

/// Upward-rounded bound on the round-off of the product A*B.
inline double mulErrBound(double A, double B) {
  return mulRU(A, B) - mulRD(A, B);
}

} // namespace fp
} // namespace safegen

#endif // SAFEGEN_FP_ROUNDING_H
