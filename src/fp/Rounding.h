//===- Rounding.h - IEEE-754 directed rounding control ----------*- C++ -*-===//
//
// Part of the SafeGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Control of the FPU rounding mode and the directed-rounding primitives the
/// whole sound runtime is built on.
///
/// Convention (paper Sec. II, footnote 1): all sound interval/affine
/// operations execute with the FPU (both x87/SSE control words via
/// fesetround) set to round **upward**. Downward-rounded results are then
/// obtained with the identity RD(x) = -RU(-x), which avoids flipping the
/// rounding mode inside hot loops. Every function in this header that is
/// documented as "requires upward mode" asserts that contract in debug
/// builds.
///
/// The library must be compiled with -frounding-math so the compiler cannot
/// constant-fold or reassociate floating-point expressions across the mode
/// switch. That flag alone is NOT sufficient for the RD(x) = -RU(-x)
/// identity: GCC (observed with 12.2 at -O1/-O2) will still rewrite
/// -((-A)*B) into A*B in some inlining contexts, treating negation as a
/// sign-exact operation — which silently turns the round-down into a
/// round-up and loses one ulp on results that round between the two
/// directions (found by the differential fuzzer as a 1-minsub under-charge
/// on subnormal products, tests/fuzz_corpus/crash-42-887.c). The negated
/// operands are therefore funnelled through the opaque() barrier below,
/// which hides their provenance from the optimizer at zero runtime cost.
///
//===----------------------------------------------------------------------===//

#ifndef SAFEGEN_FP_ROUNDING_H
#define SAFEGEN_FP_ROUNDING_H

#include <cassert>
#include <cfenv>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace safegen {
namespace fp {

/// An abstract rounding direction, independent of the FPU mode. Used by
/// the software minifloat conversions (MiniFloat.h) and the format-trait
/// layer (FormatTraits.h), whose directed roundings are computed with
/// integer arithmetic and therefore do not depend on fesetround.
enum class RoundDir : uint8_t {
  Nearest, ///< round-to-nearest, ties to even
  Up,      ///< toward +infinity
  Down,    ///< toward -infinity
};

/// Optimization barrier: returns \p X unchanged while hiding where the
/// value came from. Used on negated operands of the RD-via-RU primitives
/// so no pass can "simplify" (-A)*B back into -(A*B) (see the file
/// comment). On x86 the empty asm keeps the value in its SSE register —
/// zero instructions; the generic fallback round-trips through a volatile
/// stack slot.
inline double opaque(double X) {
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
  __asm__("" : "+x"(X));
#elif defined(__GNUC__) && defined(__aarch64__)
  __asm__("" : "+w"(X));
#else
  volatile double V = X;
  X = V;
#endif
  return X;
}

inline float opaque(float X) {
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
  __asm__("" : "+x"(X));
#elif defined(__GNUC__) && defined(__aarch64__)
  __asm__("" : "+w"(X));
#else
  volatile float V = X;
  X = V;
#endif
  return X;
}

/// Software formats (MiniFloat) negate with integer arithmetic; there is
/// nothing for the FP optimizer to fold, so the barrier is the identity.
template <typename T> inline T opaque(T X) { return X; }

/// True when the FPU currently rounds toward +infinity.
inline bool isRoundingUpward() { return std::fegetround() == FE_UPWARD; }

/// Every sound bound in the system is conditional on the FPU actually
/// being in the mode the scopes request; a failed fegetround/fesetround
/// would silently produce nearest-rounded "sound" intervals. Unsound is
/// worse than dead, so the scopes abort rather than continue.
[[noreturn]] inline void roundingModeFailure(const char *What, int Rc) {
  std::fprintf(stderr,
               "safegen: fatal: %s failed (rc=%d); cannot guarantee "
               "directed rounding, refusing to continue\n",
               What, Rc);
  std::abort();
}

/// Reads the current rounding mode, aborting if the FPU refuses to say.
inline int checkedGetRound() {
  int Mode = std::fegetround();
  if (Mode < 0)
    roundingModeFailure("fegetround", Mode);
  return Mode;
}

/// Switches the rounding mode, aborting on failure. fesetround returns
/// nonzero when the requested mode is not supported — a real possibility
/// on soft-float targets and under emulators that ignore MXCSR writes.
inline void checkedSetRound(int Mode) {
  if (int Rc = std::fesetround(Mode))
    roundingModeFailure("fesetround", Rc);
}

/// RAII scope that switches the FPU to round-upward and restores the
/// previous mode on destruction. All sound computations run inside one.
/// Both transitions are checked: a mode switch that silently fails would
/// make every bound computed inside the scope unsound.
class RoundUpwardScope {
public:
  RoundUpwardScope() : SavedMode(checkedGetRound()) {
    checkedSetRound(FE_UPWARD);
  }
  ~RoundUpwardScope() { checkedSetRound(SavedMode); }

  RoundUpwardScope(const RoundUpwardScope &) = delete;
  RoundUpwardScope &operator=(const RoundUpwardScope &) = delete;

private:
  int SavedMode;
};

/// RAII scope that switches the FPU to round-to-nearest. Used by the test
/// reference evaluators (error-free transforms are exact only in RN).
class RoundNearestScope {
public:
  RoundNearestScope() : SavedMode(checkedGetRound()) {
    checkedSetRound(FE_TONEAREST);
  }
  ~RoundNearestScope() { checkedSetRound(SavedMode); }

  RoundNearestScope(const RoundNearestScope &) = delete;
  RoundNearestScope &operator=(const RoundNearestScope &) = delete;

private:
  int SavedMode;
};

#ifndef NDEBUG
#define SAFEGEN_ASSERT_ROUND_UP()                                            \
  assert(::safegen::fp::isRoundingUpward() &&                                \
         "sound primitive called outside a RoundUpwardScope")
#else
#define SAFEGEN_ASSERT_ROUND_UP() ((void)0)
#endif

/// \name Upward-rounded primitives. Require upward mode.
/// @{
inline double addRU(double A, double B) {
  SAFEGEN_ASSERT_ROUND_UP();
  return A + B;
}
inline double subRU(double A, double B) {
  SAFEGEN_ASSERT_ROUND_UP();
  return A - B;
}
inline double mulRU(double A, double B) {
  SAFEGEN_ASSERT_ROUND_UP();
  return A * B;
}
inline double divRU(double A, double B) {
  SAFEGEN_ASSERT_ROUND_UP();
  return A / B;
}
/// @}

/// \name Downward-rounded primitives via RD(x) = -RU(-x). Require upward
/// mode.
/// @{
inline double addRD(double A, double B) {
  SAFEGEN_ASSERT_ROUND_UP();
  return -opaque(opaque(-A) + opaque(-B));
}
inline double subRD(double A, double B) {
  SAFEGEN_ASSERT_ROUND_UP();
  return -opaque(opaque(-A) + B);
}
inline double mulRD(double A, double B) {
  SAFEGEN_ASSERT_ROUND_UP();
  return -opaque(opaque(-A) * B);
}
inline double divRD(double A, double B) {
  SAFEGEN_ASSERT_ROUND_UP();
  return -opaque(opaque(-A) / B);
}
/// @}

/// Upward-rounded bound on the round-off of the upward addition A+B, i.e.
/// RU(A+B) - RD(A+B) (Eq. (4), one term). Requires upward mode. The result
/// is always >= 0 and finite unless the sum overflows.
inline double addErrBound(double A, double B) {
  return addRU(A, B) - addRD(A, B);
}

/// Upward-rounded bound on the round-off of the product A*B.
inline double mulErrBound(double A, double B) {
  return mulRU(A, B) - mulRD(A, B);
}

} // namespace fp
} // namespace safegen

#endif // SAFEGEN_FP_ROUNDING_H
