//===- Ulp.h - Unit in the last place ---------------------------*- C++ -*-===//
//
// Part of the SafeGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ulp(x) — the gap between the two floating-point numbers adjacent to x —
/// used for the conservative conversion of source constants (paper
/// Sec. IV-B, "Handling constants") and for constructing benchmark inputs
/// (Sec. VII, "Experimental setup").
///
//===----------------------------------------------------------------------===//

#ifndef SAFEGEN_FP_ULP_H
#define SAFEGEN_FP_ULP_H

#include <cmath>
#include <limits>

namespace safegen {
namespace fp {

/// The distance from |x| to the next representable double toward +infinity.
/// For x == 0 this is the smallest subnormal; for non-finite x it is NaN.
/// Rounding-mode independent (uses nextafter, not arithmetic).
inline double ulp(double X) {
  if (std::isnan(X))
    return std::numeric_limits<double>::quiet_NaN();
  if (std::isinf(X))
    return std::numeric_limits<double>::quiet_NaN();
  double A = std::fabs(X);
  double Next = std::nextafter(A, std::numeric_limits<double>::infinity());
  if (std::isinf(Next)) // A is the largest finite double.
    return A - std::nextafter(A, 0.0);
  return Next - A;
}

/// Single-precision variant of ulp().
inline float ulpf(float X) {
  if (std::isnan(X) || std::isinf(X))
    return std::numeric_limits<float>::quiet_NaN();
  float A = std::fabs(X);
  float Next = std::nextafterf(A, std::numeric_limits<float>::infinity());
  if (std::isinf(Next))
    return A - std::nextafterf(A, 0.0f);
  return Next - A;
}

/// Grid ulp for an arbitrary binary format: the gap between adjacent
/// representable values just above |x| in a format with \p Precision
/// significand bits (implicit bit included) and minimum normal exponent
/// \p EMin. ulpAt(x, 53, -1022) == ulp(x) for finite normal doubles;
/// ulpAt(x, 11, -14) is the binary16 grid. Below the normal range the
/// gap is the constant subnormal quantum 2^(EMin - Precision + 1); for
/// non-finite x it is NaN. Rounding-mode independent.
inline double ulpAt(double X, int Precision, int EMin) {
  if (!std::isfinite(X))
    return std::numeric_limits<double>::quiet_NaN();
  int E = X == 0.0 ? EMin : std::ilogb(std::fabs(X));
  if (E < EMin)
    E = EMin;
  return std::ldexp(1.0, E - Precision + 1);
}

} // namespace fp
} // namespace safegen

#endif // SAFEGEN_FP_ULP_H
