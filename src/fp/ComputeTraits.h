//===- ComputeTraits.h - Compute and rounding-policy axes -------*- C++ -*-===//
//
// Part of the SafeGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The *compute* and *rounding-policy* axes of the policy-template stack
/// (DESIGN.md §12). A compute trait performs one sound central-value
/// operation — producing the stored result plus an upward-accumulated
/// round-off bound — in terms of a format trait (FormatTraits.h) and a
/// rounding policy:
///
///  * `ComputeNative<Fmt>` — the format's own hardware arithmetic under
///    the ambient upward mode, with RD(x) = -RU(-x). Instantiated for
///    f64/f32 it is operation-for-operation identical to the historical
///    hand-written F64Center/F32Center kernels (the bit-identity tests
///    pin this down).
///  * `ComputeDD` — double-double kernels plus the conservative directed
///    residual (DESIGN.md §2).
///  * `ComputeWiden<Fmt>` — for formats strictly narrower than float
///    (f16/bf16): operands widen *exactly* to float, the f32 result is
///    rounded up/down by the FPU, then narrowed to the format grid with
///    the software directed conversions. Directed roundings compose
///    exactly over nested grids (the f16/bf16 grids are subsets of the
///    f32 grid), so Up/Dn are the true directed roundings of the exact
///    result; their gap, accumulated in the double error stream, is the
///    sound per-op round-off bound. This is the "f16 values, f32
///    intermediates, f64 error stream" point in the design space.
///
/// The rounding policy supplies the directed primitives the compute
/// traits build on. `AmbientUpward` is the paper's discipline: the FPU is
/// pinned upward (fp::RoundUpwardScope) and downward results use the
/// negation identity.
///
//===----------------------------------------------------------------------===//

#ifndef SAFEGEN_FP_COMPUTETRAITS_H
#define SAFEGEN_FP_COMPUTETRAITS_H

#include "fp/DoubleDouble.h"
#include "fp/FormatTraits.h"
#include "fp/Rounding.h"

#include <cmath>

namespace safegen {
namespace fp {

/// Rounding policy: ambient FPU pinned to round-upward (Sec. II,
/// footnote 1); downward results via RD(x) = -RU(-x). Works for every
/// native type (double, float) the FPU rounds directly.
struct AmbientUpward {
  template <typename T> static T addUp(T A, T B) {
    SAFEGEN_ASSERT_ROUND_UP();
    return A + B;
  }
  template <typename T> static T addDown(T A, T B) {
    SAFEGEN_ASSERT_ROUND_UP();
    return -fp::opaque(fp::opaque(-A) + fp::opaque(-B));
  }
  template <typename T> static T mulUp(T A, T B) {
    SAFEGEN_ASSERT_ROUND_UP();
    return A * B;
  }
  template <typename T> static T mulDown(T A, T B) {
    SAFEGEN_ASSERT_ROUND_UP();
    return -fp::opaque(fp::opaque(-A) * B);
  }
  /// Upward accumulation into the double error stream.
  static double accumulate(double Err, double Term) {
    return fp::addRU(Err, Term);
  }
};

/// Arithmetic in the format's own type under the rounding policy. The
/// distance RU(op) - RD(op) bounds the op's round-off and goes into Err.
template <typename Fmt, typename RP = AmbientUpward> struct ComputeNative {
  using Type = typename Fmt::Type;

  static Type add(Type A, Type B, double &Err) {
    Type Up = RP::addUp(A, B);
    Type Dn = RP::addDown(A, B);
    Err = RP::accumulate(Err,
                         fp::subRU(Fmt::toDouble(Up), Fmt::toDouble(Dn)));
    return Up;
  }
  static Type sub(Type A, Type B, double &Err) {
    return add(A, Fmt::neg(B), Err);
  }
  static Type mul(Type A, Type B, double &Err) {
    Type Up = RP::mulUp(A, B);
    Type Dn = RP::mulDown(A, B);
    Err = RP::accumulate(Err,
                         fp::subRU(Fmt::toDouble(Up), Fmt::toDouble(Dn)));
    return Up;
  }
};

/// Double-double kernels. Exact only in round-to-nearest, so every
/// operation charges the conservative directed-rounding residual
/// (fp::DD_RESIDUAL_EPS; DESIGN.md §2), scaled by the *operand*
/// magnitudes (cancellation can make the result arbitrarily smaller than
/// the inputs while the kernel error stays input-sized).
template <typename RP = AmbientUpward> struct ComputeDDT {
  using Type = fp::DD;

  static double residual(double ScaleMag) {
    return fp::addRU(fp::mulRU(ScaleMag, 0x1p-97), 0x1p-1000);
  }
  static Type add(Type A, Type B, double &Err) {
    fp::DD Z = fp::add(A, B);
    Err = RP::accumulate(
        Err, residual(fp::addRU(std::fabs(A.Hi), std::fabs(B.Hi))));
    return Z;
  }
  static Type sub(Type A, Type B, double &Err) {
    fp::DD Z = fp::sub(A, B);
    Err = RP::accumulate(
        Err, residual(fp::addRU(std::fabs(A.Hi), std::fabs(B.Hi))));
    return Z;
  }
  static Type mul(Type A, Type B, double &Err) {
    fp::DD Z = fp::mul(A, B);
    Err = RP::accumulate(
        Err, residual(fp::mulRU(std::fabs(A.Hi), std::fabs(B.Hi))));
    return Z;
  }
};
using ComputeDD = ComputeDDT<>;

/// Arithmetic for sub-float formats: widen exactly to float, round the
/// f32 result in both directions with the policy, then narrow to the
/// format grid with the software directed conversions. Because the
/// format's grid is a subset of the f32 grid, RU_fmt(RU_f32(x)) equals
/// RU_fmt(x) — no double-rounding anomaly. An f32 overflow (possible for
/// bf16 sums/products) yields an infinite upper bound and so an infinite
/// error term: sound, the enclosure degrades to top.
template <typename Fmt, typename RP = AmbientUpward> struct ComputeWiden {
  using Type = typename Fmt::Type;

  static Type add(Type A, Type B, double &Err) {
    float WUp = RP::addUp(A.toFloat(), B.toFloat());
    float WDn = RP::addDown(A.toFloat(), B.toFloat());
    Type Up = Type::fromFloat(WUp, RoundDir::Up);
    Type Dn = Type::fromFloat(WDn, RoundDir::Down);
    Err = RP::accumulate(Err, fp::subRU(Up.toDouble(), Dn.toDouble()));
    return Up;
  }
  static Type sub(Type A, Type B, double &Err) { return add(A, -B, Err); }
  static Type mul(Type A, Type B, double &Err) {
    float WUp = RP::mulUp(A.toFloat(), B.toFloat());
    float WDn = RP::mulDown(A.toFloat(), B.toFloat());
    Type Up = Type::fromFloat(WUp, RoundDir::Up);
    Type Dn = Type::fromFloat(WDn, RoundDir::Down);
    Err = RP::accumulate(Err, fp::subRU(Up.toDouble(), Dn.toDouble()));
    return Up;
  }
};

} // namespace fp
} // namespace safegen

#endif // SAFEGEN_FP_COMPUTETRAITS_H
