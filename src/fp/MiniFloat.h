//===- MiniFloat.h - Software 16-bit IEEE-like formats ----------*- C++ -*-===//
//
// Part of the SafeGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Software implementations of narrow IEEE-754-style binary formats —
/// binary16 (`Half`) and bfloat16 (`BFloat16`) — with *directed* rounding
/// conversions. The host FPU only rounds to f32/f64 grids, so the narrow
/// formats are emulated: a value is a 16-bit pattern, and every conversion
/// from double is performed with integer arithmetic (ilogb/ldexp/floor),
/// making it exact-by-construction and independent of the ambient FPU
/// rounding mode. This is what lets the affine runtime keep its
/// round-upward discipline (Rounding.h) while adding f16a/bf16a central
/// values: RU/RD to the 16-bit grid are computed in software, the error
/// stream stays double and uses the ambient upward mode as usual.
///
/// Semantics follow IEEE-754 §4.3: rounding toward +inf maps a too-large
/// positive value to +inf but a too-large-in-magnitude *negative* value to
/// -maxFinite (and symmetrically for rounding toward -inf). NaNs
/// canonicalize to a positive quiet NaN. Subnormals are supported (flush
/// to zero would be unsound for enclosures).
///
//===----------------------------------------------------------------------===//

#ifndef SAFEGEN_FP_MINIFLOAT_H
#define SAFEGEN_FP_MINIFLOAT_H

#include "fp/Rounding.h"

#include <cmath>
#include <cstdint>
#include <limits>

namespace safegen {
namespace fp {

/// A binary interchange format with \p ExpBits exponent bits and
/// \p MantBits stored mantissa bits (1 + ExpBits + MantBits == 16).
/// Total significand precision is MantBits + 1 (implicit leading bit).
template <int ExpBits, int MantBits> class MiniFloat {
  static_assert(1 + ExpBits + MantBits == 16, "16-bit formats only");

public:
  static constexpr int Precision = MantBits + 1;
  static constexpr int Bias = (1 << (ExpBits - 1)) - 1;
  /// Exponent of the largest finite value's leading bit.
  static constexpr int EMax = Bias;
  /// Exponent of the smallest *normal* value (subnormals sit below).
  static constexpr int EMin = 1 - Bias;

  MiniFloat() = default;

  static MiniFloat fromBits(uint16_t B) {
    MiniFloat M;
    M.B = B;
    return M;
  }
  uint16_t bits() const { return B; }

  static MiniFloat zero(bool Neg = false) {
    return fromBits(Neg ? SignMask : 0);
  }
  static MiniFloat infinity(bool Neg = false) {
    return fromBits(static_cast<uint16_t>((Neg ? SignMask : 0) | ExpMask));
  }
  static MiniFloat quietNaN() {
    return fromBits(static_cast<uint16_t>(ExpMask | (1u << (MantBits - 1))));
  }
  static MiniFloat maxFinite(bool Neg = false) {
    return fromBits(static_cast<uint16_t>((Neg ? SignMask : 0) |
                                          (ExpMask - (1u << MantBits)) |
                                          MantMask));
  }
  static MiniFloat minSubnormal(bool Neg = false) {
    return fromBits(static_cast<uint16_t>((Neg ? SignMask : 0) | 1u));
  }

  bool signbit() const { return (B & SignMask) != 0; }
  bool isNaN() const {
    return (B & ExpMask) == ExpMask && (B & MantMask) != 0;
  }
  bool isInf() const {
    return (B & ExpMask) == ExpMask && (B & MantMask) == 0;
  }
  bool isZero() const { return (B & ~SignMask) == 0; }
  bool isFinite() const { return (B & ExpMask) != ExpMask; }

  MiniFloat operator-() const {
    return fromBits(static_cast<uint16_t>(B ^ SignMask));
  }

  /// Exact widening (every finite MiniFloat value, plus +-inf, is exactly
  /// representable in float: |exponent| <= 127 and precision <= 11 < 24).
  float toFloat() const { return static_cast<float>(toDouble()); }

  /// Exact widening to double. Rounding-mode independent.
  double toDouble() const {
    uint16_t Exp = (B & ExpMask) >> MantBits;
    uint16_t Mant = B & MantMask;
    double Mag;
    if (Exp == (ExpMask >> MantBits))
      Mag = Mant ? std::numeric_limits<double>::quiet_NaN()
                 : std::numeric_limits<double>::infinity();
    else if (Exp == 0) // subnormal: Mant * 2^(EMin - MantBits)
      Mag = std::ldexp(static_cast<double>(Mant), EMin - MantBits);
    else // normal: (2^MantBits + Mant) * 2^(Exp - Bias - MantBits)
      Mag = std::ldexp(static_cast<double>((1u << MantBits) | Mant),
                       static_cast<int>(Exp) - Bias - MantBits);
    return signbit() ? -Mag : Mag;
  }

  /// Converts \p X to this format in direction \p Dir. Integer-based and
  /// exact: does not depend on (and does not perturb) the FPU rounding
  /// mode. Directed overflow follows IEEE-754: RU(+huge) = +inf but
  /// RU(-huge) = -maxFinite, and symmetrically for RD.
  static MiniFloat fromDouble(double X, RoundDir Dir) {
    if (std::isnan(X))
      return quietNaN();
    bool Neg = std::signbit(X);
    if (std::isinf(X))
      return infinity(Neg);
    if (X == 0.0)
      return zero(Neg);

    // Work on the magnitude; flip the direction for negative inputs
    // (rounding a negative value up means rounding its magnitude down).
    RoundDir MDir = Dir;
    if (Dir == RoundDir::Up)
      MDir = Neg ? RoundDir::Down : RoundDir::Up;
    else if (Dir == RoundDir::Down)
      MDir = Neg ? RoundDir::Up : RoundDir::Down;

    double A = std::fabs(X);
    int E = std::ilogb(A); // exact exponent, also for double subnormals
    if (E < EMin)
      E = EMin; // target is subnormal; quantum fixed at 2^(EMin - MantBits)

    // Scale so the target quantum is 1: exact (power-of-two scaling into
    // the normal double range; |Scaled| < 2^(MantBits+1) ulp-exact).
    double Scaled = std::ldexp(A, MantBits - E);
    double Floor = std::floor(Scaled);
    double Frac = Scaled - Floor; // exact: both below 2^(MantBits+1) << 2^53
    uint32_t I = static_cast<uint32_t>(Floor);

    switch (MDir) {
    case RoundDir::Up:
      if (Frac > 0.0)
        ++I;
      break;
    case RoundDir::Down:
      break;
    case RoundDir::Nearest:
      if (Frac > 0.5 || (Frac == 0.5 && (I & 1u)))
        ++I;
      break;
    }

    if (I == (1u << (MantBits + 1))) { // rounding carried into a new binade
      I >>= 1;
      ++E;
    }
    if (I == 0)
      return zero(Neg); // magnitude rounded down to zero
    if (E > EMax) {     // overflow
      if (MDir == RoundDir::Down)
        return maxFinite(Neg);
      return infinity(Neg); // Up and Nearest both overflow to infinity
    }

    uint16_t Bits;
    if (I >= (1u << MantBits)) // normal (covers subnormal-rounds-to-normal)
      Bits = static_cast<uint16_t>(
          (static_cast<uint32_t>(E + Bias) << MantBits) |
          (I - (1u << MantBits)));
    else // subnormal: only reachable when E was clamped to EMin
      Bits = static_cast<uint16_t>(I);
    if (Neg)
      Bits |= SignMask;
    return fromBits(Bits);
  }

  /// Exact widening makes float->MiniFloat single-rounded.
  static MiniFloat fromFloat(float X, RoundDir Dir) {
    return fromDouble(static_cast<double>(X), Dir);
  }

  /// The format-grid gap just above |x| (the narrow-format analogue of
  /// fp::ulp). NaN for non-finite input, the subnormal quantum at 0.
  static double ulpOf(double X) {
    if (!std::isfinite(X))
      return std::numeric_limits<double>::quiet_NaN();
    int E = X == 0.0 ? EMin : std::ilogb(std::fabs(X));
    if (E < EMin)
      E = EMin;
    if (E > EMax)
      E = EMax;
    return std::ldexp(1.0, E - MantBits);
  }

  /// Next representable value toward +infinity (ordinal step on the
  /// sign-magnitude encoding; -0 steps to +0's successor's negative...
  /// i.e. -minSubnormal -> -0 -> +minSubnormal as in nextafter).
  MiniFloat nextUp() const {
    if (isNaN() || (isInf() && !signbit()))
      return *this;
    if (signbit())
      return fromBits(static_cast<uint16_t>(
          (B & ~SignMask) == 0 ? 1u /* -0 -> +minSubnormal */
                               : B - 1u));
    return fromBits(static_cast<uint16_t>(B + 1u));
  }
  MiniFloat nextDown() const { return -((-*this).nextUp()); }

private:
  static constexpr uint16_t SignMask = 0x8000u;
  static constexpr uint16_t ExpMask =
      static_cast<uint16_t>(((1u << ExpBits) - 1u) << MantBits);
  static constexpr uint16_t MantMask =
      static_cast<uint16_t>((1u << MantBits) - 1u);

  uint16_t B = 0;
};

/// IEEE-754 binary16: 5 exponent bits, 10+1 significand bits.
using Half = MiniFloat<5, 10>;
/// bfloat16: 8 exponent bits (f32 range), 7+1 significand bits.
using BFloat16 = MiniFloat<8, 7>;

} // namespace fp
} // namespace safegen

#endif // SAFEGEN_FP_MINIFLOAT_H
