//===- FloatOrdinal.h - Counting floats between two values ------*- C++ -*-===//
//
// Part of the SafeGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The accuracy metric of the paper (Eqs. (8) and (9)) measures the base-2
/// logarithm of the number of floating-point values inside the resulting
/// range. This header provides the order-preserving bijection between
/// doubles and 64-bit integers ("ordinals") that makes that count a simple
/// subtraction.
///
//===----------------------------------------------------------------------===//

#ifndef SAFEGEN_FP_FLOATORDINAL_H
#define SAFEGEN_FP_FLOATORDINAL_H

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>

namespace safegen {
namespace fp {

/// Maps a double to an int64 such that the mapping is monotone on all
/// non-NaN values (including infinities) and strictly monotone except that
/// -0.0 and +0.0 both map to ordinal 0 — which is exactly right for
/// counting distinct real values. The standard sign-magnitude folding trick.
inline int64_t ordinal(double X) {
  int64_t Bits;
  std::memcpy(&Bits, &X, sizeof(Bits));
  // For negative values (sign bit set, Bits < 0) mirror the magnitude below
  // zero: INT64_MIN - Bits never overflows since Bits >= INT64_MIN.
  return Bits < 0 ? std::numeric_limits<int64_t>::min() - Bits : Bits;
}

/// Inverse of ordinal().
inline double fromOrdinal(int64_t Ord) {
  int64_t Bits =
      Ord < 0 ? std::numeric_limits<int64_t>::min() - Ord : Ord;
  double X;
  std::memcpy(&X, &Bits, sizeof(X));
  return X;
}

/// Number of doubles x with Lo <= x <= Hi (inclusive), counting both
/// signed zeros as one value. Returns 0 when Lo > Hi and UINT64_MAX when
/// either bound is NaN (the range carries no information).
inline uint64_t countFloatsInRange(double Lo, double Hi) {
  if (std::isnan(Lo) || std::isnan(Hi))
    return std::numeric_limits<uint64_t>::max();
  if (Lo > Hi)
    return 0;
  int64_t OLo = ordinal(Lo), OHi = ordinal(Hi);
  return static_cast<uint64_t>(OHi - OLo) + 1;
}

/// err(a) of Eq. (8): log2 of the number of floats in [Lo, Hi]. A point
/// range yields 0; a NaN-bounded range yields +infinity.
inline double errBits(double Lo, double Hi) {
  uint64_t N = countFloatsInRange(Lo, Hi);
  if (N == std::numeric_limits<uint64_t>::max())
    return std::numeric_limits<double>::infinity();
  if (N == 0)
    return 0.0;
  return std::log2(static_cast<double>(N));
}

/// acc(a) of Eq. (9) for a \p P-bit-mantissa format: certified bits in the
/// result, clamped below at 0 ("no bit can be certified").
inline double accBits(double Lo, double Hi, int P = 53) {
  double Acc = P - errBits(Lo, Hi);
  return Acc < 0 ? 0.0 : Acc;
}

/// \name Single-precision grid (for the f32a type): the same metric over
/// the set of floats rather than doubles.
/// @{
inline int32_t ordinalf(float X) {
  int32_t Bits;
  std::memcpy(&Bits, &X, sizeof(Bits));
  return Bits < 0 ? std::numeric_limits<int32_t>::min() - Bits : Bits;
}

inline uint32_t countFloats32InRange(float Lo, float Hi) {
  if (std::isnan(Lo) || std::isnan(Hi))
    return std::numeric_limits<uint32_t>::max();
  if (Lo > Hi)
    return 0;
  return static_cast<uint32_t>(ordinalf(Hi) - ordinalf(Lo)) + 1;
}

/// accBits over the float grid; [Lo, Hi] given as doubles and rounded
/// outward onto floats first.
inline double accBits32(double Lo, double Hi, int P = 24) {
  if (std::isnan(Lo) || std::isnan(Hi))
    return 0.0;
  float LoF = static_cast<float>(Lo);
  if (static_cast<double>(LoF) > Lo)
    LoF = std::nextafterf(LoF, -std::numeric_limits<float>::infinity());
  float HiF = static_cast<float>(Hi);
  if (static_cast<double>(HiF) < Hi)
    HiF = std::nextafterf(HiF, std::numeric_limits<float>::infinity());
  uint32_t N = countFloats32InRange(LoF, HiF);
  if (N == std::numeric_limits<uint32_t>::max())
    return 0.0;
  double Err = N == 0 ? 0.0 : std::log2(static_cast<double>(N));
  double Acc = P - Err;
  return Acc < 0 ? 0.0 : Acc;
}
/// @}

} // namespace fp
} // namespace safegen

#endif // SAFEGEN_FP_FLOATORDINAL_H
