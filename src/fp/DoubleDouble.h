//===- DoubleDouble.h - Double-double arithmetic ----------------*- C++ -*-===//
//
// Part of the SafeGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Double-double ("dd") arithmetic: an unevaluated sum Hi + Lo of two
/// doubles with |Lo| <= ulp(Hi)/2, giving ~106 bits of significand. Used
/// for (a) the central values of the `dda` affine type (paper Sec. IV-A),
/// (b) the endpoints of the IGen-dd interval baseline, and (c) the
/// high-precision reference evaluator in the tests.
///
/// The classic error-free transforms (TwoSum, TwoProd) are exact only when
/// the FPU rounds to nearest. The sound runtime, however, executes in
/// upward-rounding mode. We therefore expose, next to the RN-exact
/// operations, a *sound residual bound*: under any rounding mode the
/// algorithms below produce Hi + Lo = (exact result)·(1 + delta) with
/// |delta| <= DD_RESIDUAL_EPS, a deliberately conservative constant
/// (2^-99 vs the theoretical ~2^-104 in RN). Sound consumers widen their
/// error terms by that bound instead of assuming exactness (DESIGN.md §2).
///
//===----------------------------------------------------------------------===//

#ifndef SAFEGEN_FP_DOUBLEDOUBLE_H
#define SAFEGEN_FP_DOUBLEDOUBLE_H

#include <cmath>
#include <limits>

namespace safegen {
namespace fp {

/// Conservative error bound of one dd operation executed under an
/// arbitrary rounding mode, *relative to the operand magnitudes* (see
/// padUp; the theoretical defect is ~2^-104, we keep a 2^5 safety margin).
inline constexpr double DD_RESIDUAL_EPS = 0x1p-99;

/// TwoSum: S = fl(A+B), E = A+B-S exactly (in round-to-nearest).
inline void twoSum(double A, double B, double &S, double &E) {
  S = A + B;
  double Bv = S - A;
  double Av = S - Bv;
  E = (A - Av) + (B - Bv);
}

/// FastTwoSum: requires |A| >= |B|. S = fl(A+B), E the exact residue (RN).
inline void fastTwoSum(double A, double B, double &S, double &E) {
  S = A + B;
  E = B - (S - A);
}

/// TwoProd with FMA: P = fl(A*B), E = A*B-P exactly (in round-to-nearest).
inline void twoProd(double A, double B, double &P, double &E) {
  P = A * B;
  E = std::fma(A, B, -P);
}

/// A double-double value. POD so it can live in arrays and SIMD-adjacent
/// code without surprises.
///
/// Invariant expected by the residual bounds (padUp, DDCenter): the pair is
/// *normalized*, |Lo| <~ ulp(Hi). All kernels in this header produce
/// normalized results; constructing a wildly denormalized pair by hand
/// voids the error-bound claims (not the representation itself).
struct DD {
  double Hi = 0.0;
  double Lo = 0.0;

  DD() = default;
  DD(double Hi) : Hi(Hi), Lo(0.0) {}
  DD(double Hi, double Lo) : Hi(Hi), Lo(Lo) {}

  /// The closest double to the dd value.
  double toDouble() const { return Hi + Lo; }

  bool isNaN() const { return std::isnan(Hi) || std::isnan(Lo); }
  bool isInf() const { return std::isinf(Hi) || std::isinf(Lo); }

  DD operator-() const { return DD(-Hi, -Lo); }
};

/// dd + dd (Dekker/Knuth). Exact EFT structure in RN; under directed
/// rounding accurate to DD_RESIDUAL_EPS relative error.
inline DD add(const DD &A, const DD &B) {
  double S1, E1, S2, E2;
  twoSum(A.Hi, B.Hi, S1, E1);
  twoSum(A.Lo, B.Lo, S2, E2);
  E1 += S2;
  double Hi, Lo;
  fastTwoSum(S1, E1, Hi, Lo);
  Lo += E2;
  fastTwoSum(Hi, Lo, Hi, Lo);
  return DD(Hi, Lo);
}

inline DD sub(const DD &A, const DD &B) { return add(A, -B); }

/// dd * dd.
inline DD mul(const DD &A, const DD &B) {
  double P, E;
  twoProd(A.Hi, B.Hi, P, E);
  E += A.Hi * B.Lo + A.Lo * B.Hi;
  double Hi, Lo;
  fastTwoSum(P, E, Hi, Lo);
  return DD(Hi, Lo);
}

/// dd / dd (one Newton-ish correction step; ~full dd accuracy in RN).
inline DD div(const DD &A, const DD &B) {
  double Q1 = A.Hi / B.Hi;
  // R = A - Q1*B computed in dd.
  DD R = sub(A, mul(DD(Q1), B));
  double Q2 = R.Hi / B.Hi;
  R = sub(R, mul(DD(Q2), B));
  double Q3 = R.Hi / B.Hi;
  double Hi, Lo;
  fastTwoSum(Q1, Q2, Hi, Lo);
  Lo += Q3;
  fastTwoSum(Hi, Lo, Hi, Lo);
  return DD(Hi, Lo);
}

/// dd * double.
inline DD mul(const DD &A, double B) {
  double P, E;
  twoProd(A.Hi, B, P, E);
  E += A.Lo * B;
  double Hi, Lo;
  fastTwoSum(P, E, Hi, Lo);
  return DD(Hi, Lo);
}

/// dd + double.
inline DD add(const DD &A, double B) { return add(A, DD(B)); }

/// sqrt of a dd (Karp-Markstein style refinement).
inline DD sqrt(const DD &A) {
  if (A.Hi < 0.0)
    return DD(std::numeric_limits<double>::quiet_NaN());
  if (A.Hi == 0.0)
    return DD(0.0);
  double S = std::sqrt(A.Hi);
  // One refinement: S' = S + (A - S^2) / (2 S), in dd.
  DD S2 = mul(DD(S), DD(S));
  DD R = sub(A, S2);
  double Corr = R.Hi / (2.0 * S);
  double Hi, Lo;
  fastTwoSum(S, Corr, Hi, Lo);
  return DD(Hi, Lo);
}

/// Returns a dd value guaranteed >= the true result that X approximates,
/// where the approximation error of the producing dd operation is bounded
/// by DD_RESIDUAL_EPS·\p ScaleMag (an *operand*-magnitude scale — under
/// directed rounding the error of the dd kernels scales with the inputs,
/// not the possibly-cancelled output; Boldo/Graillat-style analyses bound
/// 2Sum's directed-rounding defect by ~2^-104·(|a|+|b|)). Pads X upward by
/// DD_RESIDUAL_EPS·ScaleMag plus one subnormal, then bumps the trailing
/// component by two ulps to absorb the padding addition's own round-off.
/// Sound under any rounding mode (DESIGN.md §2).
inline DD padUp(const DD &X, double ScaleMag) {
  double Pad = std::fabs(ScaleMag) * DD_RESIDUAL_EPS + 0x1p-1022;
  DD Y = add(X, DD(Pad));
  Y.Lo = std::nextafter(
      std::nextafter(Y.Lo, std::numeric_limits<double>::infinity()),
      std::numeric_limits<double>::infinity());
  return Y;
}

/// Mirror image of padUp: a dd value guaranteed <= the true result.
inline DD padDown(const DD &X, double ScaleMag) {
  return -padUp(-X, ScaleMag);
}

/// Total-order comparisons through the leading component (ties broken by
/// the trailing component).
inline bool less(const DD &A, const DD &B) {
  return A.Hi < B.Hi || (A.Hi == B.Hi && A.Lo < B.Lo);
}
inline bool lessEqual(const DD &A, const DD &B) {
  return A.Hi < B.Hi || (A.Hi == B.Hi && A.Lo <= B.Lo);
}
inline DD abs(const DD &A) { return A.Hi < 0.0 || (A.Hi == 0.0 && A.Lo < 0.0)
                                       ? -A
                                       : A; }
inline DD min(const DD &A, const DD &B) { return less(A, B) ? A : B; }
inline DD max(const DD &A, const DD &B) { return less(A, B) ? B : A; }

} // namespace fp
} // namespace safegen

#endif // SAFEGEN_FP_DOUBLEDOUBLE_H
