//===- FormatTraits.h - Numeric format axis ---------------------*- C++ -*-===//
//
// Part of the SafeGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The *format* axis of the policy-template stack (DESIGN.md §12). A
/// format trait describes one concrete value format — its storage type,
/// precision, directed conversions to/from double, and the double
/// enclosure of a stored value. It says nothing about how arithmetic is
/// performed; that is the *compute* axis (ComputeTraits.h). The affine
/// center policies (aa/AffineVar.h) compose one trait from each axis, so
/// f64a/f32a/dda/f16a/bf16a are five instantiations of one implementation
/// rather than five implementations.
///
/// Contract per trait:
///  * `Type` — the stored central-value type;
///  * `MantissaBits` — significand precision (implicit bit included);
///  * `ExactIntLimit` — every integer with magnitude < this limit is
///    exactly representable (used for exact source constants);
///  * `fromDouble` — conversion of a double into the format. May round in
///    either direction; callers that need soundness charge the observed
///    conversion residue (ops::makeInput) or prove exactness first
///    (ExactIntLimit);
///  * `toDouble` — *exact* widening back to double for every format here
///    except DD, whose `bounds` widens by one double-ulp instead;
///  * `bounds` — a double enclosure [Lo, Hi] of the stored value;
///  * `accBits` — the certified-bits metric counted over the format's
///    output grid (Eq. (9)).
///
//===----------------------------------------------------------------------===//

#ifndef SAFEGEN_FP_FORMATTRAITS_H
#define SAFEGEN_FP_FORMATTRAITS_H

#include "fp/DoubleDouble.h"
#include "fp/FloatOrdinal.h"
#include "fp/MiniFloat.h"
#include "fp/Rounding.h"

#include <cmath>

namespace safegen {
namespace fp {

/// double central value (f64a). Conversions are the identity.
struct FormatF64 {
  using Type = double;
  static constexpr int MantissaBits = 53;
  static constexpr double ExactIntLimit = 0x1p53;

  static Type fromDouble(double X) { return X; }
  static double toDouble(Type C) { return C; }
  static bool isNaN(Type C) { return std::isnan(C); }
  static Type neg(Type A) { return -A; }
  static void bounds(Type C, double &Lo, double &Hi) { Lo = Hi = C; }
  static double accBits(double Lo, double Hi, int P) {
    return fp::accBits(Lo, Hi, P);
  }
};

/// float central value (f32a); coefficients stay double.
struct FormatF32 {
  using Type = float;
  static constexpr int MantissaBits = 24;
  static constexpr double ExactIntLimit = 0x1p24;

  static Type fromDouble(double X) { return static_cast<float>(X); }
  static double toDouble(Type C) { return C; }
  static bool isNaN(Type C) { return std::isnan(C); }
  static Type neg(Type A) { return -A; }
  static void bounds(Type C, double &Lo, double &Hi) { Lo = Hi = C; }
  static double accBits(double Lo, double Hi, int P) {
    return fp::accBits32(Lo, Hi, P);
  }
};

/// double-double central value (dda, Sec. IV-A).
struct FormatDD {
  using Type = fp::DD;
  static constexpr int MantissaBits = 106;
  static constexpr double ExactIntLimit = 0x1p53;

  static Type fromDouble(double X) { return fp::DD(X); }
  static double toDouble(Type C) { return C.toDouble(); }
  static bool isNaN(Type C) { return C.isNaN(); }
  static Type neg(Type A) { return -A; }
  static void bounds(Type C, double &Lo, double &Hi) {
    // The true value lies within one double-ulp of Hi+Lo in each direction.
    double D = C.toDouble();
    Lo = std::nextafter(D, -HUGE_VAL);
    Hi = std::nextafter(D, HUGE_VAL);
  }
  static double accBits(double Lo, double Hi, int P) {
    return fp::accBits(Lo, Hi, P);
  }
};

/// Software minifloat central value (f16a / bf16a). fromDouble rounds
/// upward in software (deterministic, FPU-independent); makeInput charges
/// the conversion residue, so the direction choice only biases the stored
/// center, never soundness.
template <typename MF> struct FormatMini {
  using Type = MF;
  static constexpr int MantissaBits = MF::Precision;
  static constexpr double ExactIntLimit =
      static_cast<double>(1u << MF::Precision);

  static Type fromDouble(double X) {
    return MF::fromDouble(X, RoundDir::Up);
  }
  static double toDouble(Type C) { return C.toDouble(); } // exact
  static bool isNaN(Type C) { return C.isNaN(); }
  static Type neg(Type A) { return -A; }
  static void bounds(Type C, double &Lo, double &Hi) {
    Lo = Hi = C.toDouble();
  }
  static double accBits(double Lo, double Hi, int P) {
    // Eq. (9) over the format's own grid (like f32a's accBits32): round
    // [Lo, Hi] outward onto the format, count the representable values
    // inside via sign-magnitude ordinals, and certify P - log2(count).
    if (std::isnan(Lo) || std::isnan(Hi) || Lo > Hi)
      return 0.0;
    MF L = MF::fromDouble(Lo, RoundDir::Down);
    MF H = MF::fromDouble(Hi, RoundDir::Up);
    if (L.isNaN() || H.isNaN())
      return 0.0;
    auto Ordinal = [](MF V) -> int32_t {
      int32_t Mag = static_cast<int32_t>(V.bits() & 0x7fff);
      return V.signbit() ? -Mag : Mag;
    };
    int32_t N = Ordinal(H) - Ordinal(L) + 1;
    double Err = N <= 1 ? 0.0 : std::log2(static_cast<double>(N));
    double Acc = P - Err;
    return Acc < 0 ? 0.0 : Acc;
  }
};

/// IEEE binary16 central value (f16a).
using FormatF16 = FormatMini<Half>;
/// bfloat16 central value (bf16a).
using FormatBF16 = FormatMini<BFloat16>;

} // namespace fp
} // namespace safegen

#endif // SAFEGEN_FP_FORMATTRAITS_H
