#!/usr/bin/env python3
"""Build and run the SafeGen reproduction benchmarks (artifact workflow).

Mirrors the paper's artifact: builds the project, runs one benchmark
binary per table/figure, saves CSV results under results/, and (when
matplotlib is available) renders the Fig. 8-style Pareto plots to
results/plots/.

Usage:
    python3 scripts/run_benchmarks.py [--build-dir build] [--skip-build]
"""

import argparse
import csv
import io
import os
import subprocess
import sys

BENCHES = [
    ("fig8", "bench_fig8"),
    ("table3", "bench_table3"),
    ("fig9", "bench_fig9"),
    ("fig10", "bench_fig10"),
    ("ablation", "bench_ablation"),
]


def run(cmd, **kw):
    print("+", " ".join(cmd), flush=True)
    return subprocess.run(cmd, check=True, **kw)


def build(build_dir):
    run(["cmake", "-B", build_dir, "-G", "Ninja"])
    run(["cmake", "--build", build_dir])


def run_benches(build_dir, results_dir):
    os.makedirs(results_dir, exist_ok=True)
    outputs = {}
    for name, binary in BENCHES:
        path = os.path.join(build_dir, "bench", binary)
        if not os.path.exists(path):
            print(f"warning: {path} missing, skipping", file=sys.stderr)
            continue
        out = subprocess.run([path], check=True, capture_output=True,
                             text=True).stdout
        csv_path = os.path.join(results_dir, f"{name}.csv")
        with open(csv_path, "w") as f:
            f.write(out)
        print(f"  -> {csv_path}")
        outputs[name] = out
    return outputs


def parse_series(text):
    """Parses the benchmark,series,k,bits,slowdown,seconds rows."""
    rows = []
    reader = csv.reader(io.StringIO(text))
    for row in reader:
        if len(row) < 6 or row[0].startswith("#") or row[0] == "benchmark":
            continue
        try:
            rows.append((row[0], row[1], int(row[2]), float(row[3]),
                         float(row[4])))
        except ValueError:
            continue
    return rows


def plot_fig8(text, plot_dir):
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib not available; skipping plots", file=sys.stderr)
        return
    os.makedirs(plot_dir, exist_ok=True)
    rows = parse_series(text)
    benches = sorted({r[0] for r in rows})
    for bench in benches:
        fig, ax = plt.subplots(figsize=(5, 4))
        series = sorted({r[1] for r in rows if r[0] == bench})
        for s in series:
            pts = [(r[4], r[3]) for r in rows if r[0] == bench and r[1] == s]
            pts.sort()
            ax.plot([p[0] for p in pts], [p[1] for p in pts], "o-",
                    label=s, markersize=3, linewidth=0.8)
        ax.set_xscale("log")
        ax.set_xlabel("slowdown vs unsound double")
        ax.set_ylabel("certified bits")
        ax.set_title(f"{bench}: accuracy vs runtime (Fig. 8)")
        ax.legend(fontsize=6)
        out = os.path.join(plot_dir, f"fig8_{bench}.pdf")
        fig.tight_layout()
        fig.savefig(out)
        plt.close(fig)
        print(f"  -> {out}")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--build-dir", default="build")
    ap.add_argument("--results-dir", default="results")
    ap.add_argument("--skip-build", action="store_true")
    args = ap.parse_args()

    if not args.skip_build:
        build(args.build_dir)
    outputs = run_benches(args.build_dir, args.results_dir)
    if "fig8" in outputs:
        plot_fig8(outputs["fig8"], os.path.join(args.results_dir, "plots"))
    print("done.")


if __name__ == "__main__":
    main()
