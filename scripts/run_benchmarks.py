#!/usr/bin/env python3
"""Build and run the SafeGen reproduction benchmarks (artifact workflow).

Mirrors the paper's artifact: builds the project, runs one benchmark
binary per table/figure, saves CSV results under results/, and (when
matplotlib is available) renders the Fig. 8-style Pareto plots to
results/plots/.

Also runs the cross-instance batch-engine benchmark (bench_batch) and
emits a machine-readable BENCH_batch.json (config -> ns/element, plus
speedup-vs-per-form and thread-scaling summaries) so the perf trajectory
is tracked PR-over-PR. `--check` re-runs bench_batch plus the safegend
service benchmark (bench_service: warm-vs-cold, rps, p50/p99, hit rate)
and exits nonzero when any configuration regressed more than 20% against
the committed baseline (bench/BENCH_batch_baseline.json) or a perf-floor
gate fails (engine ratios, SIMD tiers, sparse storage, service cache).

Usage:
    python3 scripts/run_benchmarks.py [--build-dir build] [--skip-build]
    python3 scripts/run_benchmarks.py --check [--quick]
"""

import argparse
import csv
import io
import json
import os
import re
import subprocess
import sys

BENCHES = [
    ("fig8", "bench_fig8"),
    ("table3", "bench_table3"),
    ("fig9", "bench_fig9"),
    ("fig10", "bench_fig10"),
    ("ablation", "bench_ablation"),
]


def run(cmd, **kw):
    print("+", " ".join(cmd), flush=True)
    return subprocess.run(cmd, check=True, **kw)


def build(build_dir):
    run(["cmake", "-B", build_dir, "-G", "Ninja"])
    run(["cmake", "--build", build_dir])


def run_benches(build_dir, results_dir):
    os.makedirs(results_dir, exist_ok=True)
    outputs = {}
    for name, binary in BENCHES:
        path = os.path.join(build_dir, "bench", binary)
        if not os.path.exists(path):
            print(f"warning: {path} missing, skipping", file=sys.stderr)
            continue
        out = subprocess.run([path], check=True, capture_output=True,
                             text=True).stdout
        csv_path = os.path.join(results_dir, f"{name}.csv")
        with open(csv_path, "w") as f:
            f.write(out)
        print(f"  -> {csv_path}")
        outputs[name] = out
    return outputs


def parse_series(text):
    """Parses the benchmark,series,k,bits,slowdown,seconds rows."""
    rows = []
    reader = csv.reader(io.StringIO(text))
    for row in reader:
        if len(row) < 6 or row[0].startswith("#") or row[0] == "benchmark":
            continue
        try:
            rows.append((row[0], row[1], int(row[2]), float(row[3]),
                         float(row[4])))
        except ValueError:
            continue
    return rows


def plot_fig8(text, plot_dir):
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib not available; skipping plots", file=sys.stderr)
        return
    os.makedirs(plot_dir, exist_ok=True)
    rows = parse_series(text)
    benches = sorted({r[0] for r in rows})
    for bench in benches:
        fig, ax = plt.subplots(figsize=(5, 4))
        series = sorted({r[1] for r in rows if r[0] == bench})
        for s in series:
            pts = [(r[4], r[3]) for r in rows if r[0] == bench and r[1] == s]
            pts.sort()
            ax.plot([p[0] for p in pts], [p[1] for p in pts], "o-",
                    label=s, markersize=3, linewidth=0.8)
        ax.set_xscale("log")
        ax.set_xlabel("slowdown vs unsound double")
        ax.set_ylabel("certified bits")
        ax.set_title(f"{bench}: accuracy vs runtime (Fig. 8)")
        ax.legend(fontsize=6)
        out = os.path.join(plot_dir, f"fig8_{bench}.pdf")
        fig.tight_layout()
        fig.savefig(out)
        plt.close(fig)
        print(f"  -> {out}")


DEFAULT_BASELINE = os.path.join("bench", "BENCH_batch_baseline.json")


def parse_batch_csv(text):
    """Parses bench_batch's path,config,k,batch,threads,ns_per_element
    rows, plus the optional 7th bytes_per_instance column carried by the
    storage-mode rows. Each row is also tagged with the index of the
    bench phase it ran in (the count of noise-probe boundary rows seen
    before it), so --check can skip absolute comparisons per phase."""
    rows = []
    phase = 0
    for row in csv.reader(io.StringIO(text)):
        if len(row) not in (6, 7) or row[0].startswith("#") \
                or row[0] == "path":
            continue
        try:
            parsed = {
                "path": row[0],
                "config": row[1],
                "k": int(row[2]),
                "batch": int(row[3]),
                "threads": int(row[4]),
                "ns_per_element": float(row[5]),
                "phase": phase,
            }
            if len(row) == 7:
                parsed["bytes_per_instance"] = float(row[6])
        except ValueError:
            continue
        rows.append(parsed)
        if parsed["path"].startswith("noise-probe-"):
            phase += 1
    return rows


def probe_samples(ns):
    """Ordered noise-probe samples: probe index -> ns/element."""
    out = {}
    for key, val in ns.items():
        if not key.startswith("noise-probe-") or val <= 0.0:
            continue
        try:
            out[int(key.split("/", 1)[0].rsplit("-", 1)[1])] = val
        except ValueError:
            continue
    return out


def phase_noise_drift(ns):
    """Per-phase host drift: phase p's rows run between probe p-1 and
    probe p (bench_batch times the identical fixed workload at every
    phase boundary), so max/min - 1 of those two bracketing samples
    bounds how much the host's speed changed while phase p's rows were
    being measured. Keys are stringified phase indices (JSON objects
    key on strings)."""
    samples = probe_samples(ns)
    drifts = {}
    for p in range(1, max(samples, default=-1) + 1):
        lo = samples.get(p - 1)
        hi = samples.get(p)
        if lo is None or hi is None:
            continue
        drifts[str(p)] = round(max(lo, hi) / min(lo, hi) - 1.0, 3)
    return drifts


def summarize_isa(rows):
    """tier -> speedup vs the scalar kernel tier, per k/n, from the
    single-threaded batch@<tier> rows. Only tiers the benchmarking host
    actually ran appear (bench_batch emits one row per available tier),
    so a narrow machine simply yields a shorter table."""
    scalar = {(r["k"], r["batch"]): r["ns_per_element"]
              for r in rows
              if r["path"] == "batch@scalar" and r["threads"] == 1}
    speedup = {}
    for r in rows:
        if not r["path"].startswith("batch@") or r["threads"] != 1:
            continue
        tier = r["path"].split("@", 1)[1]
        kn = (r["k"], r["batch"])
        if kn not in scalar or r["ns_per_element"] <= 0.0:
            continue
        tag = "k{}/n{}".format(*kn)
        speedup.setdefault(tag, {})[tier] = round(
            scalar[kn] / r["ns_per_element"], 3)
    return speedup


def summarize_batch(rows):
    """config -> ns/element, batch speedup vs per-form, thread scaling,
    the interpreter tape-vs-tree engine speedup, and the dense-vs-sparse
    storage comparison (time and resident-memory ratios)."""
    ns = {}
    row_phase = {}
    bytes_per_instance = {}
    for r in rows:
        key = "{path}/{config}/k{k}/n{batch}/t{threads}".format(**r)
        ns[key] = r["ns_per_element"]
        row_phase[key] = r["phase"]
        if "bytes_per_instance" in r:
            bytes_per_instance[key] = r["bytes_per_instance"]
    per_form = {(r["k"], r["batch"]): r["ns_per_element"]
                for r in rows if r["path"] == "per-form"}
    batch_t1 = {(r["k"], r["batch"]): r["ns_per_element"]
                for r in rows if r["path"] == "batch" and r["threads"] == 1}
    tree_t1 = {(r["k"], r["batch"]): r["ns_per_element"]
               for r in rows
               if r["path"] == "interp-tree" and r["threads"] == 1}
    tape_t1 = {(r["k"], r["batch"]): r["ns_per_element"]
               for r in rows
               if r["path"] == "interp-tape" and r["threads"] == 1}
    native_t1 = {(r["k"], r["batch"]): r["ns_per_element"]
                 for r in rows
                 if r["path"] == "interp-native" and r["threads"] == 1}
    speedup = {}
    scaling = {}
    for r in rows:
        kn = (r["k"], r["batch"])
        if r["path"] == "batch":
            tag = "k{}/n{}".format(*kn)
            if kn in per_form:
                speedup.setdefault(tag, {})["t{}".format(
                    r["threads"])] = round(
                        per_form[kn] / r["ns_per_element"], 3)
            if kn in batch_t1:
                scaling.setdefault(tag, {})["t{}".format(
                    r["threads"])] = round(
                        batch_t1[kn] / r["ns_per_element"], 3)
        elif r["path"] == "interp-tape" and kn in tape_t1:
            # Tape-engine thread scaling, keyed apart from the raw batch
            # engine's so both trajectories are tracked.
            tag = "interp/k{}/n{}".format(*kn)
            scaling.setdefault(tag, {})["t{}".format(r["threads"])] = round(
                tape_t1[kn] / r["ns_per_element"], 3)
        elif r["path"] == "interp-native" and kn in native_t1:
            tag = "interp-native/k{}/n{}".format(*kn)
            scaling.setdefault(tag, {})["t{}".format(r["threads"])] = round(
                native_t1[kn] / r["ns_per_element"], 3)
    tape_speedup = {
        "k{}/n{}".format(*kn): round(tree_t1[kn] / tape_t1[kn], 3)
        for kn in tape_t1 if kn in tree_t1
    }
    # Native vs tape t1 ratio. bench_batch measures the two engines in
    # interleaved blocks, so this ratio is meaningful even on hosts whose
    # absolute timings drift between rows.
    native_speedup = {
        "k{}/n{}".format(*kn): round(tape_t1[kn] / native_t1[kn], 3)
        for kn in native_t1 if kn in tape_t1
    }
    # Dense-vs-sparse storage ratios from the interleaved batch-dense /
    # batch-sparse row pairs (same kernel, same inputs, bit-identical
    # results — bench_batch hard-fails otherwise). time > 1 means the
    # group-sparse layout is faster; memory > 1 means it is smaller.
    dense_rows = {(r["k"], r["batch"]): r
                  for r in rows if r["path"] == "batch-dense"}
    sparse_vs_dense = {}
    for r in rows:
        if r["path"] != "batch-sparse":
            continue
        kn = (r["k"], r["batch"])
        d = dense_rows.get(kn)
        if d is None or r["ns_per_element"] <= 0.0:
            continue
        entry = {"time": round(d["ns_per_element"] / r["ns_per_element"], 3)}
        if d.get("bytes_per_instance") and r.get("bytes_per_instance"):
            entry["memory"] = round(
                d["bytes_per_instance"] / r["bytes_per_instance"], 3)
        sparse_vs_dense["k{}/n{}".format(*kn)] = entry
    return {
        "ns_per_element": ns,
        "row_phase": row_phase,
        "bytes_per_instance": bytes_per_instance,
        "speedup_vs_per_form": speedup,
        "thread_scaling": scaling,
        "tape_vs_tree_speedup": tape_speedup,
        "native_vs_tape_speedup": native_speedup,
        "sparse_vs_dense": sparse_vs_dense,
        "simd_speedup_vs_scalar": summarize_isa(rows),
        "noise_probe_phase_drift": phase_noise_drift(ns),
    }


def run_batch_bench(build_dir, results_dir, quick):
    path = os.path.join(build_dir, "bench", "bench_batch")
    if not os.path.exists(path):
        print(f"warning: {path} missing, skipping batch bench",
              file=sys.stderr)
        return None
    cmd = [path] + (["--quick"] if quick else [])
    print("+", " ".join(cmd), flush=True)
    out = subprocess.run(cmd, check=True, capture_output=True,
                         text=True).stdout
    os.makedirs(results_dir, exist_ok=True)
    csv_path = os.path.join(results_dir, "batch.csv")
    with open(csv_path, "w") as f:
        f.write(out)
    print(f"  -> {csv_path}")
    data = summarize_batch(parse_batch_csv(out))
    with open("BENCH_batch.json", "w") as f:
        json.dump(data, f, indent=2, sort_keys=True)
        f.write("\n")
    print("  -> BENCH_batch.json")
    return data


def run_service_bench(build_dir, results_dir, quick):
    """Runs bench_service (the safegend warm-vs-cold and latency bench)
    and returns its metric -> value rows for BENCH_batch.json's
    "service" key. None when the binary is missing (service not built)."""
    path = os.path.join(build_dir, "bench", "bench_service")
    if not os.path.exists(path):
        print(f"warning: {path} missing, skipping service bench",
              file=sys.stderr)
        return None
    cmd = [path] + (["--quick"] if quick else [])
    print("+", " ".join(cmd), flush=True)
    out = subprocess.run(cmd, check=True, capture_output=True,
                         text=True).stdout
    os.makedirs(results_dir, exist_ok=True)
    csv_path = os.path.join(results_dir, "service.csv")
    with open(csv_path, "w") as f:
        f.write(out)
    print(f"  -> {csv_path}")
    metrics = {}
    for row in csv.reader(io.StringIO(out)):
        if len(row) != 2 or row[0].startswith("#") or row[0] == "metric":
            continue
        try:
            metrics[row[0]] = float(row[1])
        except ValueError:
            continue
    return metrics


# Warm (cached artifact) vs cold (parse + compile + evaluate per
# request) on a single-instance request of a mid-sized kernel — the
# compile-bound regime the KernelCache exists for. The ratio is
# measured from interleaved rounds on bit-identical results, so, like
# the engine-ratio gates, it stays enforced when the host's absolute
# speed drifts. The reference host shows 10-13x; the floor sits well
# below that band.
SERVICE_WARM_SPEEDUP_FLOOR = 5.0


def check_service_gate(data):
    """The kernel cache must pay its way: a warm request at least 5x
    cheaper than the cold per-request pipeline, and the closed-loop
    latency/hit-rate rows present."""
    failures = []
    service = data.get("service")
    if service is None:
        failures.append("service: bench_service did not run")
        return failures
    got = service.get("service-warm-vs-cold")
    if got is None:
        failures.append("service: no warm-vs-cold measurement")
    elif got < SERVICE_WARM_SPEEDUP_FLOOR:
        failures.append(
            f"service warm-vs-cold: {got:.2f}x < "
            f"{SERVICE_WARM_SPEEDUP_FLOOR:.1f}x floor")
    for key in ("service-rps", "service-p50-us", "service-p99-us",
                "service-hit-rate"):
        if key not in service:
            failures.append(f"service: {key} row missing")
    return failures


KERNELS = ["henon", "sor", "luf", "fgm"]

TIMING_RE = re.compile(r"^\s*([0-9.]+) s \(\s*[0-9.]+%\)\s+(\S+)\s*$")
STAT_RE = re.compile(r"^(\d+)\t(\S+)")


def compile_pass_stats(build_dir, results_dir):
    """Compiles each benchmark kernel with --time-passes --stats and
    collects the per-pass compile-time breakdown and counters."""
    tool = os.path.join(build_dir, "src", "driver", "safegen")
    if not os.path.exists(tool):
        print(f"warning: {tool} missing, skipping pass stats",
              file=sys.stderr)
        return None
    breakdown = {}
    for kernel in KERNELS:
        src = os.path.join("benchmarks", f"{kernel}.c")
        cmd = [tool, src, "--config", "f64a-dspv", "--time-passes",
               "--stats", "--compile-tape", "-o", os.devnull]
        print("+", " ".join(cmd), flush=True)
        proc = subprocess.run(cmd, check=True, capture_output=True,
                              text=True)
        timings = {}
        stats = {}
        for line in proc.stderr.splitlines():
            m = TIMING_RE.match(line)
            if m:
                timings[m.group(2)] = float(m.group(1))
                continue
            m = STAT_RE.match(line)
            if m:
                stats[m.group(2)] = int(m.group(1))
        breakdown[kernel] = {"pass_seconds": timings, "stats": stats}
    os.makedirs(results_dir, exist_ok=True)
    csv_path = os.path.join(results_dir, "compile_passes.csv")
    with open(csv_path, "w") as f:
        f.write("kernel,pass,seconds\n")
        for kernel, entry in breakdown.items():
            for name, seconds in entry["pass_seconds"].items():
                f.write(f"{kernel},{name},{seconds}\n")
    print(f"  -> {csv_path}")
    return breakdown


CORPUS_DIR = os.path.join("tests", "fuzz_corpus")


def fuzz_corpus_status(build_dir, corpus_dir=CORPUS_DIR):
    """Replays the soundness-fuzz corpus (DESIGN.md §9) and reports its
    size and pass/fail. Corpus entries document fixed bugs, so a failing
    replay is a regression. Returns a dict for BENCH_batch.json, or None
    when the fuzzer binary or corpus is missing."""
    tool = os.path.join(build_dir, "src", "driver", "safegen-fuzz")
    if not os.path.exists(tool):
        print(f"warning: {tool} missing, skipping fuzz corpus replay",
              file=sys.stderr)
        return None
    if not os.path.isdir(corpus_dir):
        print(f"warning: {corpus_dir} missing, skipping fuzz corpus replay",
              file=sys.stderr)
        return None
    entries = [f for f in os.listdir(corpus_dir) if f.endswith(".c")]
    cmd = [tool, "--replay", corpus_dir]
    print("+", " ".join(cmd), flush=True)
    proc = subprocess.run(cmd, capture_output=True, text=True)
    passed = proc.returncode == 0
    status = "pass" if passed else "FAIL"
    print(f"  fuzz corpus: {len(entries)} reproducer(s), replay {status}")
    if not passed:
        print(proc.stdout + proc.stderr, file=sys.stderr)
    return {"reproducers": len(entries), "replay_passed": passed}


TAPE_SPEEDUP_FLOOR = 2.0  # tape t1 vs tree t1 at k16/n4096
# Native t1 vs tape t1 at k16/n1024. The two engines share the identical
# ISA-dispatched kernels (~half the native runtime), so the native
# backend's win is bounded by the glue it removes: per-op column
# allocation and the chunk-wide cache round-trips that its lane-group
# tiling avoids. bench_batch measures the two engines in interleaved
# blocks and runs the engine rows first (before sustained load can
# throttle the shared vCPU, which compresses the ratio); under those
# conditions the reference host shows 1.45-1.65x at this size. The
# floor sits below that band's noise, not at its center.
NATIVE_SPEEDUP_FLOOR = 1.2
THREAD_SCALING_FLOOR = 1.5  # t4/t1 at n >= 4096
SIMD_SPEEDUP_FLOOR = 1.5  # best vector tier vs scalar tier at k16/n >= 1024
VECTOR_TIERS = ["sse2", "avx2", "avx512"]


def check_engine_gates(data):
    """Perf-floor gates for the tape engine; returns failure strings.

    The t4/t1 gate is hardware-aware: a <4-core runner cannot show a
    4-thread speedup, so there the scaling is recorded but the floor is
    skipped (noted in the json under thread_scaling_gate)."""
    failures = []
    got = data.get("tape_vs_tree_speedup", {}).get("k16/n4096")
    if got is None:
        failures.append("tape_vs_tree_speedup: no k16/n4096 measurement")
    elif got < TAPE_SPEEDUP_FLOOR:
        failures.append(
            f"tape_vs_tree_speedup k16/n4096: {got:.2f}x < "
            f"{TAPE_SPEEDUP_FLOOR:.1f}x floor")
    got = data.get("native_vs_tape_speedup", {}).get("k16/n1024")
    if got is None:
        failures.append("native_vs_tape_speedup: no k16/n1024 measurement")
    elif got < NATIVE_SPEEDUP_FLOOR:
        failures.append(
            f"native_vs_tape_speedup k16/n1024: {got:.2f}x < "
            f"{NATIVE_SPEEDUP_FLOOR:.2f}x floor")
    cores = os.cpu_count() or 1
    if cores < 4:
        data["thread_scaling_gate"] = {
            "enforced": False,
            "note": f"skipped: {cores} core(s) on this host, "
                    "t4/t1 floor needs >= 4",
        }
        print(f"  thread-scaling gate skipped ({cores} core(s) available)")
        return failures
    data["thread_scaling_gate"] = {"enforced": True}
    for tag, by_t in data.get("thread_scaling", {}).items():
        n = int(tag.rsplit("/n", 1)[1])
        if n < 4096 or "t4" not in by_t:
            continue
        if by_t["t4"] < THREAD_SCALING_FLOOR:
            failures.append(
                f"thread_scaling {tag}: t4/t1 = {by_t['t4']:.2f} < "
                f"{THREAD_SCALING_FLOOR:.1f} floor")
    return failures


NARROW_CONFIGS = ["f16a-dspn", "bf16a-dspn"]


def check_narrow_gate(data):
    """The 16-bit format rows (interp-narrow path, K=16) must be present:
    bench_batch hard-fails when a narrow enclosure is invalid or disjoint
    from the f64a tape enclosure, so a missing row means the f16a/bf16a
    pipeline silently stopped running."""
    failures = []
    keys = data.get("ns_per_element", {})
    for cfg in NARROW_CONFIGS:
        prefix = f"interp-narrow/{cfg}/k16/"
        if not any(k.startswith(prefix) for k in keys):
            failures.append(f"narrow formats: no {cfg} k16 measurement")
    return failures


def check_simd_gate(data):
    """The widest vector kernel tier the host ran must beat the scalar
    tier by SIMD_SPEEDUP_FLOOR at k16 / n >= 1024. Hosts (or builds)
    without any vector tier have nothing to gate: bench_batch only emits
    rows for tiers cpuid accepted, so the gate degrades to a no-op there
    (recorded in the json under simd_gate)."""
    failures = []
    enforced = False
    for tag, by_tier in data.get("simd_speedup_vs_scalar", {}).items():
        k, n = tag.split("/n", 1)
        if k != "k16" or int(n) < 1024:
            continue
        best = None
        for tier in VECTOR_TIERS:  # ordered narrow -> wide
            if tier in by_tier:
                best = tier
        if best is None:
            continue
        enforced = True
        if by_tier[best] < SIMD_SPEEDUP_FLOOR:
            failures.append(
                f"simd_speedup_vs_scalar {tag}: {best} = "
                f"{by_tier[best]:.2f}x < {SIMD_SPEEDUP_FLOOR:.1f}x floor")
    data["simd_gate"] = {"enforced": enforced}
    if not enforced:
        data["simd_gate"]["note"] = ("skipped: no vector kernel tier "
                                     "measured on this host")
        print("  simd gate skipped (no vector tier measured)")
    return failures


SPARSE_TIME_FLOOR = 0.5  # dense/sparse ns ratio at k128/n1024
SPARSE_MEMORY_FLOOR = 2.0  # dense/sparse resident bytes at k128/n1024


def check_sparse_gate(data):
    """The group-sparse storage layout must still pay its way at the
    large-K point it exists for: k128/n1024 on the division-bearing
    kernel. Since the vectorized linear-map kernel (div as inv+mul in
    the cross-instance engine) the dense live mask stays at the
    program's true occupancy instead of densifying to all K rows, so
    sparse's large-K win is resident memory (>= 2x smaller); on time it
    must merely stay within 2x of dense (group bookkeeping overhead).
    Both ratios come from interleaved dense/sparse measurement of
    bit-identical runs, so — like the engine gates — they stay enforced
    even when the host's absolute speed drifts."""
    failures = []
    got = data.get("sparse_vs_dense", {}).get("k128/n1024")
    if got is None:
        failures.append("sparse_vs_dense: no k128/n1024 measurement")
        return failures
    if got["time"] < SPARSE_TIME_FLOOR:
        failures.append(
            f"sparse_vs_dense k128/n1024 time: {got['time']:.2f}x < "
            f"{SPARSE_TIME_FLOOR:.1f}x floor")
    mem = got.get("memory")
    if mem is None:
        failures.append("sparse_vs_dense k128/n1024: no memory ratio "
                        "(bytes_per_instance column missing)")
    elif mem < SPARSE_MEMORY_FLOOR:
        failures.append(
            f"sparse_vs_dense k128/n1024 memory: {mem:.2f}x < "
            f"{SPARSE_MEMORY_FLOOR:.1f}x floor")
    return failures


NOISE_DRIFT_LIMIT = 0.15  # max/min spread of the noise-probe samples


def host_noise_drift(ns):
    """Worst disagreement (max/min - 1) between bench_batch's fixed
    noise-probe workload samples, taken at every phase boundary of the
    run. 0.0 = perfectly stable host; None when the probe rows are
    missing (old bench binary). Boundary sampling matters: bursts last
    minutes, so a single start/end pair can land in two calm windows
    and miss a burst that corrupted the rows in between."""
    samples = [val for key, val in ns.items()
               if key.startswith("noise-probe-") and val > 0.0]
    if len(samples) < 2:
        return None
    return max(samples) / min(samples) - 1.0


def check_batch(data, baseline_path, tolerance=0.20):
    """Returns a list of human-readable regressions (>tolerance slower).

    Hardware-aware, like the thread-scaling gate, in two ways. Rows run
    with more threads than the host has cores measure timesharing noise,
    not engine performance, and are excluded. And the run's own noise
    probes (an identical fixed workload timed at every phase boundary of
    bench_batch) bound how much the host's speed changed while each
    phase's rows were measured — shared-vCPU hosts show minute-scale 2x
    bursts. A phase whose bracketing probes disagree by more than
    NOISE_DRIFT_LIMIT has its rows recorded but not enforced: those rows
    could differ from baseline by the host's mood alone. Phases measured
    between calm probes stay enforced, so one burst no longer turns off
    the whole absolute comparison (the pre-phase behavior). When the
    per-row phase map is missing (summary from an old bench binary), the
    gate falls back to all-or-nothing on the global probe spread. The
    within-run ratio gates (check_engine_gates, check_simd_gate,
    check_sparse_gate) stay enforced either way."""
    with open(baseline_path) as f:
        baseline = json.load(f)
    ns = data.get("ns_per_element", {})
    drift = host_noise_drift(ns)
    row_phase = data.get("row_phase", {})
    phase_drift = data.get("noise_probe_phase_drift") or phase_noise_drift(ns)
    if not row_phase or not phase_drift:
        # Old-format summary: no per-phase attribution possible.
        if drift is not None and drift > NOISE_DRIFT_LIMIT:
            data["absolute_regression_gate"] = {
                "enforced": False,
                "noise_probe_drift": round(drift, 3),
                "note": f"skipped: host speed drifted {drift * 100.0:.0f}% "
                        "mid-run (noise-probe rows) and no per-phase map "
                        "is available; absolute comparisons are "
                        "meaningless under this much machine noise",
            }
            print(f"  absolute-regression gate skipped (host drifted "
                  f"{drift * 100.0:.0f}% mid-run)")
            return []
        skipped_phases = []
    else:
        skipped_phases = sorted(
            (p for p, d in phase_drift.items() if d > NOISE_DRIFT_LIMIT),
            key=int)
    data["absolute_regression_gate"] = {
        "enforced": True,
        "noise_probe_drift": None if drift is None else round(drift, 3),
        "skipped_phases": skipped_phases,
    }
    if skipped_phases:
        spreads = ", ".join(
            f"{p}: {phase_drift[p] * 100.0:.0f}%" for p in skipped_phases)
        print(f"  absolute-regression gate: skipping drifted phase(s) "
              f"{{{spreads}}}, enforcing the rest")
    regressions = []
    base_ns = baseline.get("ns_per_element", {})
    cores = os.cpu_count() or 1
    for key, new in ns.items():
        old = base_ns.get(key)
        if old is None or old <= 0.0:
            continue
        if key.startswith("noise-probe-"):
            continue
        if str(row_phase.get(key, "")) in skipped_phases:
            continue
        threads = int(key.rsplit("/t", 1)[1])
        if threads > cores:
            continue
        if new > old * (1.0 + tolerance):
            regressions.append(
                f"{key}: {new:.1f} ns/el vs baseline {old:.1f} "
                f"(+{(new / old - 1.0) * 100.0:.0f}%)")
    return regressions


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--build-dir", default="build")
    ap.add_argument("--results-dir", default="results")
    ap.add_argument("--skip-build", action="store_true")
    ap.add_argument("--quick", action="store_true",
                    help="run bench_batch in --quick mode")
    ap.add_argument("--check", action="store_true",
                    help="run only bench_batch and fail on >20%% regression "
                         "vs the committed baseline")
    ap.add_argument("--baseline", default=DEFAULT_BASELINE)
    args = ap.parse_args()

    if not args.skip_build:
        build(args.build_dir)

    if args.check:
        data = run_batch_bench(args.build_dir, args.results_dir, args.quick)
        if data is None:
            sys.exit("error: bench_batch binary not found")
        if not os.path.exists(args.baseline):
            sys.exit(f"error: baseline {args.baseline} not found")
        service = run_service_bench(args.build_dir, args.results_dir,
                                    args.quick)
        if service is not None:
            data["service"] = service
        regressions = check_batch(data, args.baseline)
        gate_failures = (check_engine_gates(data) + check_simd_gate(data) +
                         check_narrow_gate(data) + check_sparse_gate(data) +
                         check_service_gate(data))
        passes = compile_pass_stats(args.build_dir, args.results_dir)
        if passes is not None:
            data["compile_passes"] = passes
        with open("BENCH_batch.json", "w") as f:
            json.dump(data, f, indent=2, sort_keys=True)
            f.write("\n")
        if regressions:
            print("REGRESSIONS (>20% vs baseline):")
            for r in regressions:
                print("  " + r)
        if gate_failures:
            print("ENGINE GATE FAILURES:")
            for r in gate_failures:
                print("  " + r)
        if regressions or gate_failures:
            sys.exit(1)
        corpus = fuzz_corpus_status(args.build_dir)
        if corpus is not None and not corpus["replay_passed"]:
            sys.exit("error: fuzz corpus replay failed (a fixed bug "
                     "regressed)")
        print("check passed: no regression >20% vs baseline, engine "
              "floors met.")
        return

    outputs = run_benches(args.build_dir, args.results_dir)
    data = run_batch_bench(args.build_dir, args.results_dir, args.quick)
    service = run_service_bench(args.build_dir, args.results_dir, args.quick)
    passes = compile_pass_stats(args.build_dir, args.results_dir)
    corpus = fuzz_corpus_status(args.build_dir)
    if data is not None:
        if corpus is not None:
            data["fuzz_corpus"] = corpus
        if service is not None:
            data["service"] = service
        if passes is not None:
            # check_batch only reads ns_per_element, so adding the
            # per-pass compile-time breakdown keeps the baseline
            # comparison intact.
            data["compile_passes"] = passes
        # Informational here (gates only fail under --check), but the
        # hardware note still lands in the json.
        gate_failures = (check_engine_gates(data) + check_simd_gate(data) +
                         check_narrow_gate(data) + check_sparse_gate(data) +
                         check_service_gate(data))
        if gate_failures:
            for r in gate_failures:
                print("  engine gate (informational): " + r)
        with open("BENCH_batch.json", "w") as f:
            json.dump(data, f, indent=2, sort_keys=True)
            f.write("\n")
        print("  -> BENCH_batch.json (with compile_passes)")
    if "fig8" in outputs:
        plot_fig8(outputs["fig8"], os.path.join(args.results_dir, "plots"))
    print("done.")


if __name__ == "__main__":
    main()
